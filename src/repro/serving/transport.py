"""Connection transports for the serving gateway.

The transport layer of the three-layer gateway split owns sockets and
nothing else: bytes in, bytes out, connection lifecycle.  Requests are
framed by :mod:`repro.serving.protocol` and answered by a
:class:`~repro.serving.handlers.GatewayDispatcher`; both transports
drive the exact same dispatcher, which is what lets the test suite pin
behavioral parity between them.

Two implementations:

* :class:`SelectorTransport` — the default.  One event-loop thread
  multiplexes every connection through stdlib :mod:`selectors`
  (non-blocking accept/read/write, per-connection parser state machines,
  keep-alive and idle-timeout reaping).  Completed requests are handed
  to a small dispatch pool (whose threads block on the
  :class:`~repro.serving.ScorerPool` futures — scoring stays on the
  scorer workers) and finished responses come back through a completion
  queue that wakes the loop.  A slow client therefore costs one buffer,
  never a thread: the loop trickles its bytes out as the socket drains,
  which is what lets the gateway hold hundreds of concurrent sockets.
* :class:`ThreadedTransport` — the PR 4 thread-per-connection
  ``ThreadingHTTPServer`` front-end, kept behind ``--backend threaded``
  as the parity baseline and for deployments that prefer its simplicity
  at low connection counts.

:class:`GatewayCounters` is the shared connection-counter block both
transports maintain and ``GET /stats`` reports.
"""

from __future__ import annotations

import queue
import selectors
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .handlers import GatewayDispatcher
from .protocol import (MAX_BODY_BYTES, MAX_HEADER_BYTES, ProtocolError,
                       Request, RequestParser, encode_body, encode_error,
                       encode_head, validate_content_length)

__all__ = ["GatewayCounters", "SelectorTransport", "ThreadedTransport",
           "ShardedTransport", "BACKENDS", "create_transport"]

_RECV_CHUNK = 65536
# Write backpressure: once a connection's outbound buffer passes this,
# stop reading it until the buffer drains.  Without the pause, a client
# that pipelines requests but never reads responses grows the buffer
# without bound — and its own reads would keep resetting the idle timer.
_OUT_HIGH_WATER = 1 << 20
DEFAULT_IDLE_TIMEOUT_S = 30.0


class GatewayCounters:
    """Connection-level counters shared by the transport and ``/stats``.

    ``open`` is the number of currently connected sockets, ``accepted``
    the total ever accepted, ``requests`` the responses served,
    ``keepalive_reuses`` how many requests arrived on an already-used
    connection (i.e. how much work keep-alive saved), and ``in_flight``
    how many requests are inside a handler right now — the gauge a
    graceful drain waits on.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.open = 0
        self.accepted = 0
        self.requests = 0
        self.keepalive_reuses = 0
        self.in_flight = 0

    def connection_opened(self) -> None:
        with self._lock:
            self.open += 1
            self.accepted += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.open -= 1

    def dispatch_started(self) -> None:
        with self._lock:
            self.in_flight += 1

    def dispatch_finished(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def request_served(self, reused: bool) -> None:
        with self._lock:
            self.requests += 1
            if reused:
                self.keepalive_reuses += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {"open": self.open, "accepted": self.accepted,
                    "requests": self.requests,
                    "keepalive_reuses": self.keepalive_reuses,
                    "in_flight": self.in_flight}


# ----------------------------------------------------------------------
# Selector-based event loop transport
# ----------------------------------------------------------------------
class _Connection:
    """Per-socket state machine for the selector loop.

    Owned by the event-loop thread; dispatch threads only ever read the
    immutable :class:`Request` they were handed and push results onto
    the completion queue, so no per-connection locking is needed.
    """

    __slots__ = ("sock", "parser", "out", "pending", "in_flight",
                 "requests_dispatched", "last_activity", "close_after_write",
                 "read_closed", "registered", "alive")

    def __init__(self, sock: socket.socket, max_header_bytes: int,
                 max_body_bytes: int):
        self.sock = sock
        self.parser = RequestParser(max_header_bytes=max_header_bytes,
                                    max_body_bytes=max_body_bytes)
        self.out = bytearray()
        # Parsed-but-not-dispatched items, strictly in arrival order.  A
        # trailing ProtocolError rides the same queue so its error
        # response cannot jump ahead of responses the client is owed.
        self.pending: list[Request | ProtocolError] = []
        self.in_flight = False              # one dispatch at a time: responses
        self.requests_dispatched = 0        # stay in pipeline order
        self.last_activity = time.monotonic()
        self.close_after_write = False
        self.read_closed = False            # stream desynced: stop reading
        self.registered = True              # currently in the selector
        self.alive = True


class SelectorTransport:
    """Non-blocking event-loop front-end on stdlib :mod:`selectors`.

    Parameters
    ----------
    dispatcher:
        The :class:`GatewayDispatcher` answering completed requests.
    idle_timeout_s:
        A connection with no byte activity for this long is reaped: a
        quiet keep-alive connection is closed silently, a mid-request
        stall (slow-loris) is answered with a structured 408 first.
    max_body_bytes / max_header_bytes:
        Framing limits; violations answer structurally (413/431) and
        close, since the stream can no longer be trusted.
    dispatch_workers:
        Threads executing handlers (which block on scorer futures).
        This caps in-flight *handler* concurrency, not connections —
        idle keep-alive sockets cost nothing.
    """

    def __init__(self, host: str, port: int, dispatcher: GatewayDispatcher,
                 counters: GatewayCounters | None = None,
                 idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 dispatch_workers: int = 8,
                 listener: socket.socket | None = None,
                 reuse_port: bool = False):
        if idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        if dispatch_workers <= 0:
            raise ValueError("dispatch_workers must be positive")
        self.dispatcher = dispatcher
        self.counters = counters if counters is not None else GatewayCounters()
        self.idle_timeout_s = idle_timeout_s
        self._max_body_bytes = max_body_bytes
        self._max_header_bytes = max_header_bytes
        if listener is not None:
            # Sharding: the caller owns socket creation (SO_REUSEPORT
            # siblings or dup()'d fds of one acceptor) and each shard
            # loop drives one pre-bound listener.
            self._listener = listener
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuse_port:
                self._listener.setsockopt(socket.SOL_SOCKET,
                                          socket.SO_REUSEPORT, 1)
            self._listener.bind((host, port))
            self._listener.listen(1024)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        # Self-pipe: dispatch threads finishing a response must wake the
        # loop out of select() to get it written.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._completions: queue.Queue = queue.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="gateway-dispatch")
        self._connections: set[_Connection] = set()
        self._shutdown_requested = threading.Event()
        self._drain_requested = threading.Event()
        self._draining = False              # loop-thread view of the above
        self._loop_done = threading.Event()
        self._loop_done.set()               # not serving yet
        # select() returns since serve_forever began — the regression
        # gauge for the event-driven loop: with every connection's
        # handler in flight there is nothing to poll for, so the count
        # must stay near zero instead of ticking at a poll interval.
        self.loop_wakeups = 0

    @property
    def server_address(self) -> tuple[str, int]:
        return self._listener.getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle (mirrors the http.server surface ServingServer drives)
    # ------------------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.05) -> None:
        # A shutdown() issued before the serve thread got here must win:
        # never clear the flag (serving is one-shot), never touch a
        # selector that server_close() may already have closed.
        if self._shutdown_requested.is_set():
            return
        self._loop_done.clear()
        sel = self._selector
        try:
            try:
                sel.register(self._listener, selectors.EVENT_READ, "accept")
                sel.register(self._wake_r, selectors.EVENT_READ, "wake")
            except (OSError, ValueError, KeyError):
                return                  # closed before serving began
            while not self._shutdown_requested.is_set():
                events = sel.select(self._select_timeout(poll_interval))
                self.loop_wakeups += 1
                if self._drain_requested.is_set() and not self._draining:
                    self._start_drain()
                for key, mask in events:
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        self._drain_wake()
                    else:
                        connection = key.data
                        if connection.alive and mask & selectors.EVENT_READ:
                            self._on_readable(connection)
                        if connection.alive and mask & selectors.EVENT_WRITE:
                            self._on_writable(connection)
                self._apply_completions()
                self._reap_idle()
                if self._draining:
                    self._sweep_drained()
        finally:
            for connection in list(self._connections):
                self._close_connection(connection)
            for sock in (self._listener, self._wake_r):
                try:
                    sel.unregister(sock)
                except (OSError, ValueError, KeyError):
                    pass
            self._loop_done.set()

    def shutdown(self) -> None:
        """Ask the loop to exit and wait until it has.

        Immediate stop: in-flight responses are abandoned (their
        connections are closed in the loop's cleanup).  Restart paths
        want :meth:`drain` instead — this is the escape hatch behind its
        deadline.
        """
        self._shutdown_requested.set()
        self._wake()
        self._loop_done.wait()

    def begin_drain(self) -> None:
        """Non-blocking graceful stop: quit accepting, answer everything
        accepted (in flight *and* pipelined), force ``Connection: close``
        on each connection's final response, then let ``serve_forever``
        return on its own.

        Callable from any thread — in particular from a signal handler's
        helper while the serving thread is inside ``select()``; the loop
        applies the transition on its next wakeup.
        """
        self._drain_requested.set()
        self._wake()

    def drain(self, deadline_s: float) -> None:
        """Blocking drain with a bounded deadline.

        Waits for the loop to answer every accepted request; whatever
        cannot finish by ``deadline_s`` is cut off by a forced
        :meth:`shutdown` (which is a no-op when the drain completed in
        time).
        """
        self.begin_drain()
        self._loop_done.wait(timeout=max(deadline_s, 0.0))
        self.shutdown()

    def server_close(self) -> None:
        self._listener.close()
        # Let in-flight dispatch finish instead of cancelling it: the
        # previous wait=False/cancel_futures=True here reset accepted
        # requests on every restart.  Waiting is bounded — the scorer
        # pools are still alive at this point (ServingServer.close shuts
        # the service down *after* the transport) and pool workers always
        # resolve their futures, so no handler can block forever.
        self._executor.shutdown(wait=True)
        self._selector.close()
        self._wake_r.close()
        self._wake_w.close()

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _select_timeout(self, poll_interval: float) -> float | None:
        """Sleep until the next idle deadline could fire — or block.

        Only reapable connections (no handler in flight) bound the sleep
        — a long-scoring request must not spin the loop at its past-due
        deadline.  With nothing reapable the loop blocks in ``select()``
        indefinitely: every state change it must act on arrives as a
        selector event (readable/writable sockets, a fresh accept) or a
        self-pipe wake (completions, shutdown, drain), so a timed poll
        only burns wakeups — the old ``max(poll_interval, 0.05)`` floor
        woke a fully-loaded loop 20x/s for nothing.
        """
        del poll_interval               # event-driven: nothing to poll for
        reapable = [c.last_activity for c in self._connections
                    if not c.in_flight]
        if not reapable:
            return None
        next_deadline = min(reapable) + self.idle_timeout_s
        return min(max(next_deadline - time.monotonic(), 0.01), 0.5)

    def _start_drain(self) -> None:
        """Loop-thread drain transition: stop accepting, keep answering.

        The listener closes immediately so the OS refuses new connections
        (a load balancer sees connection-refused and routes elsewhere)
        while every accepted connection keeps being served.
        ``_sweep_drained`` then retires connections as they go quiet and
        ends the loop once none remain.
        """
        self._draining = True
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass

    def _sweep_drained(self) -> None:
        """Close connections with nothing left to answer; exit when done.

        A connection survives the sweep while it has a handler in flight,
        queued pipelined requests, unflushed response bytes, or a request
        mid-arrival — everything the drain promised to answer.  Idle
        keep-alive connections (the common case: clients waiting to send
        their *next* request) are closed immediately rather than waiting
        out the idle timeout.
        """
        for connection in list(self._connections):
            if not connection.in_flight and not connection.pending \
                    and not connection.out \
                    and not connection.parser.mid_request:
                self._close_connection(connection)
        if not self._connections:
            self._shutdown_requested.set()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass                        # already pending / already closed

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return                  # listener closed under us
            sock.setblocking(False)
            # Same latency hygiene as the threaded gateway: small JSON
            # responses on persistent connections stall ~5x on
            # delayed ACKs without NODELAY.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock, self._max_header_bytes,
                                     self._max_body_bytes)
            self._connections.add(connection)
            self.counters.connection_opened()
            self._selector.register(sock, selectors.EVENT_READ, connection)

    def _on_readable(self, connection: _Connection) -> None:
        if connection.read_closed or connection.close_after_write:
            # Already answering a framing violation: the parser is dead
            # and further bytes must not mint duplicate error responses.
            return
        try:
            data = connection.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_connection(connection)
            return
        if not data:                    # peer closed its end
            self._close_connection(connection)
            return
        connection.last_activity = time.monotonic()
        try:
            requests = connection.parser.feed(data)
        except ProtocolError as error:
            # The byte stream is desynced: stop reading, answer any
            # requests this feed still completed, then the error — all
            # through the ordered pending queue — and close.
            self.dispatcher.record_protocol_error()
            connection.pending.extend(error.completed)
            connection.pending.append(error)
            connection.read_closed = True
            self._update_interest(connection)
            self._pump_dispatch(connection)
            return
        connection.pending.extend(requests)
        self._pump_dispatch(connection)

    def _pump_dispatch(self, connection: _Connection) -> None:
        """Hand the connection's next request to the dispatch pool.

        One in-flight handler per connection: pipelined requests are
        answered strictly in arrival order, so back-to-back requests in
        one segment can never interleave their responses.
        """
        if connection.in_flight or connection.close_after_write \
                or not connection.pending:
            return
        item = connection.pending.pop(0)
        if isinstance(item, ProtocolError):
            # Terminal by construction (reads stopped when it was queued):
            # emit the structured error in turn, then close once written.
            connection.out += encode_error(item.status, item.kind, str(item))
            connection.close_after_write = True
            self._update_interest(connection)
            self._on_writable(connection)
            return
        connection.in_flight = True
        reused = connection.requests_dispatched > 0
        connection.requests_dispatched += 1
        self.counters.dispatch_started()
        self._executor.submit(self._run_handler, connection, item, reused)

    def _run_handler(self, connection: _Connection, request: Request,
                     reused: bool) -> None:
        """Dispatch-pool job: compute the response body, enqueue, wake.

        Only the *body* is rendered here — the head waits for the loop
        thread (:meth:`_apply_completions`), which alone knows whether
        this response must carry ``Connection: close`` (drain mode closes
        each connection on its final response, but a pipelined request
        already queued behind this one must still be answered first).
        """
        force_close = not request.keep_alive
        try:
            # Raw target: the dispatcher owns path normalization (the
            # threaded backend hands it raw paths too).  received_at is
            # the parser's off-the-wire stamp, so the deadline budget
            # counts queueing inside the gateway (dispatch backlog,
            # scorer queue) but not client-side send time.
            status, payload, headers = self.dispatcher.dispatch(
                request.method, request.target, request.body,
                headers=request.headers, received_at=request.received_at)
            body, content_type = encode_body(payload)
        except BaseException as error:  # encoding failed: still must answer
            status, headers = 500, {}
            body, content_type = encode_body(
                {"error": {"type": "internal",
                           "message": f"{type(error).__name__}: {error}"}})
            force_close = True
        finally:
            self.counters.dispatch_finished()
        self._completions.put((connection, status, body, content_type,
                               headers, force_close, reused))
        self._wake()

    def _apply_completions(self) -> None:
        while True:
            try:
                (connection, status, body, content_type, headers,
                 force_close, reused) = self._completions.get_nowait()
            except queue.Empty:
                return
            if not connection.alive:
                continue                # client vanished while we scored
            connection.in_flight = False
            keep_alive = not force_close
            if self._draining and not connection.pending \
                    and not connection.parser.mid_request:
                # The connection's last promised response: tell the
                # client not to reuse the socket, so the drain converges
                # instead of racing the client's next request forever.
                keep_alive = False
            connection.out += encode_head(
                status, len(body), keep_alive=keep_alive,
                content_type=content_type, extra_headers=headers) + body
            connection.close_after_write |= not keep_alive
            connection.last_activity = time.monotonic()
            self.counters.request_served(reused=reused)
            self._update_interest(connection)
            self._pump_dispatch(connection)
            # Opportunistic write: the socket is almost always writable
            # for a small JSON response, so skip a select() round trip.
            self._on_writable(connection)

    def _on_writable(self, connection: _Connection) -> None:
        if not connection.out:
            self._update_interest(connection)
            return
        try:
            sent = connection.sock.send(memoryview(connection.out))
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_connection(connection)
            return
        if sent:
            del connection.out[:sent]
            connection.last_activity = time.monotonic()
        if not connection.out and connection.close_after_write:
            self._close_connection(connection)
            return
        # Recompute interest on every write: draining below the
        # high-water mark resumes reads a backpressured peer earned back.
        self._update_interest(connection)

    def _update_interest(self, connection: _Connection) -> None:
        if not connection.alive:
            return
        # Read only while the stream is trusted (a dead parser must not
        # be fed) and the peer is keeping up with its responses (write
        # backpressure: past the high-water mark, reads pause until the
        # buffer drains, so a never-reading pipeliner eventually goes
        # idle and is reaped instead of growing the buffer forever).
        mask = 0
        if not connection.close_after_write and not connection.read_closed \
                and len(connection.out) < _OUT_HIGH_WATER:
            mask = selectors.EVENT_READ
        if connection.out:
            mask |= selectors.EVENT_WRITE
        try:
            if not mask:
                # Nothing to watch (e.g. waiting on an in-flight handler
                # with the stream already desynced): park the socket
                # entirely.  Registering EVENT_WRITE with an empty out
                # buffer would make the always-writable socket spin
                # select() at 100% CPU; completions re-register it.
                if connection.registered:
                    self._selector.unregister(connection.sock)
                    connection.registered = False
            elif connection.registered:
                self._selector.modify(connection.sock, mask, connection)
            else:
                self._selector.register(connection.sock, mask, connection)
                connection.registered = True
        except (KeyError, ValueError, OSError):
            pass                        # unregistered in a racing close

    def _reap_idle(self) -> None:
        if not self._connections:
            return
        now = time.monotonic()
        for connection in list(self._connections):
            if connection.in_flight:
                continue                # a handler is working: not idle
            if now - connection.last_activity <= self.idle_timeout_s:
                continue                # write progress also bumps activity
            if connection.out:
                # Write-stalled: the peer stopped reading its response
                # (send() has made no progress for a full idle window).
                # Nothing can be delivered, so drop it — otherwise a
                # never-reading client leaks the socket + buffer forever.
                self._close_connection(connection)
            elif connection.parser.mid_request or connection.pending:
                # Slow-loris: a request started arriving and stalled.
                # Answer so a confused-but-honest client learns why.
                self.dispatcher.record_protocol_error()
                connection.out += encode_error(
                    408, "request_timeout",
                    f"request idle for more than {self.idle_timeout_s:g}s")
                connection.close_after_write = True
                self._update_interest(connection)
                self._on_writable(connection)
            else:
                self._close_connection(connection)

    def _close_connection(self, connection: _Connection) -> None:
        if not connection.alive:
            return
        connection.alive = False
        self._connections.discard(connection)
        self.counters.connection_closed()
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError):
            pass
        try:
            connection.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Threaded fallback transport (the PR 4 front-end)
# ----------------------------------------------------------------------
class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Match the selector backend's listen(1024).  The socketserver
    # default backlog of 5 drops SYNs under a connection stampede (32
    # clients reconnecting after an error burst): the losers retransmit
    # on the 1s TCP timer and surface as periodic ECONNRESET waves —
    # found by the chaos harness, which requires zero transport errors.
    request_queue_size = 1024
    # The gateway holds real state (scorer pools); don't let a lingering
    # client connection on a reused address confuse a fresh server.
    allow_reuse_address = True
    # Flipped by ThreadedTransport.begin_drain/drain: handler threads add
    # ``Connection: close`` to every response so keep-alive clients let
    # go of their sockets and the drain converges.
    draining = False
    dispatcher: GatewayDispatcher
    counters: GatewayCounters
    max_body_bytes: int
    idle_timeout_s: float


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serving/2.0"
    protocol_version = "HTTP/1.1"       # keep-alive for multi-request clients
    # Latency hygiene for small JSON responses on persistent connections:
    # buffer the whole response into one TCP segment and disable Nagle,
    # else the header/body write pattern triggers delayed-ACK stalls
    # (measured ~8x request latency on loopback).
    wbufsize = -1
    disable_nagle_algorithm = True

    def setup(self):
        # Socket timeout doubles as the keep-alive idle timeout: a read
        # that times out makes handle_one_request close the connection,
        # matching the selector backend's reaper.
        self.timeout = self.server.idle_timeout_s
        super().setup()
        self._requests_on_connection = 0
        self.server.counters.connection_opened()

    def finish(self):
        try:
            super().finish()
        finally:
            self.server.counters.connection_closed()

    def log_message(self, format, *args):   # noqa: A002 - stdlib signature
        pass                                # the gateway keeps its own counters

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        dispatcher = self.server.dispatcher
        # Stamp arrival before reading the body, matching the selector
        # backend (its parser stamps when the head finishes): a client
        # trickling its payload spends its own deadline budget.
        received_at = time.monotonic()
        headers = {name.lower(): value for name, value in self.headers.items()}
        try:
            # Drain the body before anything can error: on a keep-alive
            # connection an unread body would be parsed as the next
            # request line, desyncing every request after a 4xx.
            body = self._read_body() if method == "POST" else b""
        except ProtocolError as error:
            # Same contract as the selector backend's ProtocolError
            # path: structured answer, then drop the connection.
            dispatcher.record_protocol_error()
            self.close_connection = True
            self._send(error.status,
                       {"error": {"type": error.kind, "message": str(error)}})
            return
        self.server.counters.dispatch_started()
        try:
            status, payload, response_headers = dispatcher.dispatch(
                method, self.path, body,
                headers=headers, received_at=received_at)
        finally:
            self.server.counters.dispatch_finished()
        self._requests_on_connection += 1
        self.server.counters.request_served(
            reused=self._requests_on_connection > 1)
        self._send(status, payload, response_headers)

    def _read_body(self) -> bytes:
        # Shared validation with the selector backend's parser, so the
        # 400/413 semantics (and error bodies) cannot drift apart.
        length = validate_content_length(self.headers.get("Content-Length"),
                                         self.server.max_body_bytes)
        return self.rfile.read(length) if length > 0 else b""

    def _send(self, status: int, payload,
              extra_headers: dict | None = None) -> None:
        try:
            body, content_type = encode_body(payload)
            extra = dict(extra_headers or {})
            content_type = extra.pop("Content-Type", content_type)
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in extra.items():
                self.send_header(name, value)
            if getattr(self.server, "draining", False):
                # Coarser than the selector drain (every response while
                # draining closes, not just each connection's last) but
                # the contract holds: accepted requests are answered and
                # clients are told to reconnect elsewhere.  send_header
                # also flips close_connection for us.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass                            # client went away mid-response


class ThreadedTransport:
    """Thread-per-connection front-end on stdlib ``ThreadingHTTPServer``.

    The PR 4 gateway, now driving the shared
    :class:`~repro.serving.handlers.GatewayDispatcher` — kept as the
    behavioral-parity baseline for the selector backend and selectable
    with ``--backend threaded``.
    """

    def __init__(self, host: str, port: int, dispatcher: GatewayDispatcher,
                 counters: GatewayCounters | None = None,
                 idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 dispatch_workers: int = 8):
        del max_header_bytes, dispatch_workers  # stdlib server manages both
        self.dispatcher = dispatcher
        self.counters = counters if counters is not None else GatewayCounters()
        self.idle_timeout_s = idle_timeout_s
        self._httpd = _GatewayHTTPServer((host, port), _Handler)
        self._httpd.dispatcher = dispatcher
        self._httpd.counters = self.counters
        self._httpd.max_body_bytes = max_body_bytes
        self._httpd.idle_timeout_s = idle_timeout_s

    @property
    def server_address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    def serve_forever(self, poll_interval: float = 0.05) -> None:
        self._httpd.serve_forever(poll_interval=poll_interval)

    def shutdown(self) -> None:
        self._httpd.shutdown()

    def begin_drain(self) -> None:
        """Non-blocking graceful stop: stop accepting, mark every further
        response ``Connection: close``.  In-flight handler threads keep
        running; :meth:`drain` (or ``shutdown``) waits them out.
        """
        self._httpd.draining = True
        # shutdown() blocks until serve_forever returns, which can take
        # up to one poll interval — too long for a signal path, so hand
        # it to a helper thread.
        threading.Thread(target=self._httpd.shutdown,
                         name="gateway-drain", daemon=True).start()

    def drain(self, deadline_s: float) -> None:
        """Blocking drain: stop accepting, wait for in-flight handlers.

        Waits on the ``in_flight`` gauge rather than ``open`` — idle
        keep-alive clients may hold sockets for seconds after their last
        response, and the drain's promise is about accepted *requests*,
        not lingering idle connections (their handler threads are daemons
        and the forced close in ``server_close`` cuts them off).
        """
        self._httpd.draining = True
        self._httpd.shutdown()          # no new connections accepted
        deadline = time.monotonic() + max(deadline_s, 0.0)
        while self.counters.snapshot()["in_flight"] > 0 \
                and time.monotonic() < deadline:
            time.sleep(0.02)

    def server_close(self) -> None:
        self._httpd.server_close()


class ShardedTransport:
    """N selector event loops accepting on one port.

    One selector loop eventually saturates a core on accept + parse +
    buffer shuffling; sharding runs ``shards`` independent
    :class:`SelectorTransport` loops whose listeners all bind the same
    address via ``SO_REUSEPORT`` — the kernel load-balances incoming
    connections across the shard listeners.  Where ``SO_REUSEPORT`` is
    unavailable the fallback is one bound acceptor socket ``dup()``-ed
    into every shard: all loops select on the same underlying listener
    and accept races resolve through the non-blocking ``EAGAIN`` path
    (a thundering herd, but a correct one).

    Every shard drives the **same** dispatcher and counters: routing,
    model registry, scorer pools, and the result cache are shared, so a
    ``POST /reload`` is atomic across shards by construction — there is
    exactly one registry swap, and every shard's next request sees it
    (or none does, when the reload is rejected).  Each shard gets its
    own dispatch pool of ``dispatch_workers // shards`` threads so the
    total handler concurrency matches the unsharded configuration.

    The lifecycle surface mirrors :class:`SelectorTransport`;
    ``serve_forever`` runs shard 0 on the calling thread and the rest on
    ``gateway-shard-N`` threads.
    """

    def __init__(self, host: str, port: int, dispatcher: GatewayDispatcher,
                 counters: GatewayCounters | None = None,
                 shards: int = 2,
                 idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_header_bytes: int = MAX_HEADER_BYTES,
                 dispatch_workers: int = 8,
                 force_dup_fallback: bool = False):
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.dispatcher = dispatcher
        self.counters = counters if counters is not None else GatewayCounters()
        self.idle_timeout_s = idle_timeout_s
        listeners, self.reuse_port = self._make_listeners(
            host, port, shards, allow_reuse_port=not force_dup_fallback)
        per_shard_workers = max(1, dispatch_workers // shards)
        self._shards = [SelectorTransport(
            host, port, dispatcher, counters=self.counters,
            idle_timeout_s=idle_timeout_s, max_body_bytes=max_body_bytes,
            max_header_bytes=max_header_bytes,
            dispatch_workers=per_shard_workers, listener=listener)
            for listener in listeners]
        self._threads: list[threading.Thread] = []

    @staticmethod
    def _make_listeners(host: str, port: int, shards: int,
                        allow_reuse_port: bool = True
                        ) -> tuple[list[socket.socket], bool]:
        """Bind one listener per shard on a single address.

        Returns ``(listeners, used_reuse_port)``.  The REUSEPORT path
        binds shard 0 first (resolving ``port=0`` to a concrete port)
        and the siblings to that concrete port; any failure falls back
        to the single-acceptor ``dup()`` layout.
        """
        listeners: list[socket.socket] = []
        if allow_reuse_port and hasattr(socket, "SO_REUSEPORT"):
            try:
                bound_port = port
                for _ in range(shards):
                    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                    sock.bind((host, bound_port))
                    bound_port = sock.getsockname()[1]
                    sock.listen(1024)
                    listeners.append(sock)
                return listeners, True
            except OSError:
                for sock in listeners:
                    sock.close()
                listeners = []
        base = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        base.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        base.bind((host, port))
        base.listen(1024)
        listeners = [base] + [base.dup() for _ in range(shards - 1)]
        return listeners, False

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def server_address(self) -> tuple[str, int]:
        return self._shards[0].server_address

    @property
    def loop_wakeups(self) -> int:
        return sum(shard.loop_wakeups for shard in self._shards)

    # ------------------------------------------------------------------
    # Lifecycle (mirrors SelectorTransport)
    # ------------------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.05) -> None:
        self._threads = [threading.Thread(
            target=shard.serve_forever, kwargs={"poll_interval": poll_interval},
            name=f"gateway-shard-{index}", daemon=True)
            for index, shard in enumerate(self._shards[1:], start=1)]
        for thread in self._threads:
            thread.start()
        try:
            self._shards[0].serve_forever(poll_interval=poll_interval)
        finally:
            for thread in self._threads:
                thread.join()

    def shutdown(self) -> None:
        for shard in self._shards:
            shard.shutdown()

    def begin_drain(self) -> None:
        for shard in self._shards:
            shard.begin_drain()

    def drain(self, deadline_s: float) -> None:
        """Drain every shard against one shared wall-clock deadline."""
        self.begin_drain()
        deadline = time.monotonic() + max(deadline_s, 0.0)
        for shard in self._shards:
            shard._loop_done.wait(timeout=max(deadline - time.monotonic(), 0.0))
        self.shutdown()

    def server_close(self) -> None:
        for shard in self._shards:
            shard.server_close()


BACKENDS = {"selector": SelectorTransport, "threaded": ThreadedTransport}


def create_transport(backend: str, host: str, port: int,
                     dispatcher: GatewayDispatcher, **kwargs):
    """Build the requested transport; ``backend`` is ``selector`` or
    ``threaded``.  ``shards`` > 1 (selector only) builds a
    :class:`ShardedTransport` running that many selector loops on one
    port."""
    shards = kwargs.pop("shards", 1)
    if shards and shards > 1:
        if backend != "selector":
            raise ValueError("gateway sharding requires the selector "
                             f"backend, not {backend!r}")
        return ShardedTransport(host, port, dispatcher, shards=shards,
                                **kwargs)
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"choose from {sorted(BACKENDS)}") from None
    return factory(host, port, dispatcher, **kwargs)
