"""End-to-end ranking service: intent → model selection → scoring → top-k.

This is the serving-side composition of the paper's pipeline: the query is
classified into its sub/top category by the BiGRU classifier (§4.1), the
top category selects which registered ranking model handles the traffic
(per-category routing with a default fallback — the "category-dedicated
model extraction" direction of the paper's conclusions), candidates are
scored through that model's micro-batching :class:`BatchScorer`, and the
top-k items come back with scores and latency.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import Batch
from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from ..querycat import QueryCategoryClassifier
from ..nn.infer import PrefixMemo
from .breaker import BreakerConfig, CircuitBreaker
from .cache import ResultCache, canonical_key
from .procscorer import ProcessScorerHost
from .registry import ModelRegistry
from .scorer import DeadlineExceeded, PoolOverloaded, ScorerPool, ScorerStats

__all__ = ["RankingService", "RankingResponse", "candidate_batch"]

# Numeric features (by FeatureSpec name) the model-free degraded prior
# prefers, in priority order: popularity/quality signals that rank
# sensibly without any learned weights.
_PRIOR_FEATURES = ("historical_ctr", "log_sales", "brand_popularity",
                   "relevance")

# Outcomes that say nothing about model health: backpressure, expired
# deadlines, and client-data errors must neither open nor close the
# breaker (see repro.serving.breaker).
_BREAKER_EXEMPT = (PoolOverloaded, DeadlineExceeded, KeyError, ValueError,
                   IndexError)


def candidate_batch(numeric: np.ndarray, sparse: dict[str, np.ndarray]) -> Batch:
    """Build a scoring :class:`Batch` from candidate features.

    Serving requests have no labels or session structure; they are filled
    with zeros (models never read them when scoring).
    """
    numeric = np.atleast_2d(np.asarray(numeric))
    n = numeric.shape[0]
    sparse = {name: np.asarray(ids) for name, ids in sparse.items()}
    return Batch(numeric=numeric, sparse=sparse,
                 labels=np.zeros(n), session_ids=np.zeros(n, dtype=np.int64))


@dataclass
class RankingResponse:
    """Result of one :meth:`RankingService.rank` call."""

    indices: np.ndarray                 # candidate rows, best first
    scores: np.ndarray                  # matching purchase probabilities
    model_name: str
    model_version: int
    predicted_sc: int | None = None     # query intent (when classified)
    predicted_tc: int | None = None
    latency_ms: float = 0.0
    degraded: bool = False              # model-free fallback (breaker open)
    cached: bool = False                # served from the result cache
    extras: dict = field(default_factory=dict)


class RankingService:
    """Compose querycat intent, model routing, and micro-batched scoring.

    Parameters
    ----------
    registry:
        Versioned model store; every routed name must be registered.
    default_model:
        Name used when no routing rule matches (default: the registry's
        sole name, an error if it is ambiguous at rank time).
    classifier / taxonomy:
        Optional BiGRU query classifier and category tree.  When both are
        given and a request carries query tokens, the predicted top
        category drives routing.
    routing:
        ``top-category id → model name`` rules for category-dedicated
        models.
    max_batch_rows / max_wait_ms:
        Micro-batching knobs handed to each model's :class:`ScorerPool`.
    num_workers:
        Scoring workers per model.  1 (the default) reproduces the PR 3
        single-worker ``BatchScorer`` behavior; more workers score a
        model's micro-batches concurrently, each on its own compiled plan
        (``model.make_scorer()``), overlapping their coalescing waits.
    adaptive_batch / min_batch_rows:
        Micro-batch cap policy (see :class:`ScorerPool`): adaptive (the
        default) recomputes the cap from the live backlog at collect
        time, with ``max_batch_rows`` as the upper and ``min_batch_rows``
        the lower clamp; ``adaptive_batch=False`` pins the static
        per-worker cap.
    max_backlog_rows:
        Per-pool admission bound, in rows.  A submission that would push
        a pool's backlog past this raises
        :class:`~repro.serving.scorer.PoolOverloaded` (the gateway turns
        it into a 429); ``None`` (the default) keeps the unbounded
        library behavior.  The gateway always serves with a bound — see
        :func:`~repro.serving.server.serve_from_directory`.
    breaker_config:
        When set, each routed model name gets a
        :class:`~repro.serving.breaker.CircuitBreaker` with this config:
        repeated *model* failures open it and :meth:`rank` serves a
        model-free degraded fallback (``degraded: True`` on the
        response) instead of erroring, until half-open probes prove the
        model healthy again.  ``None`` (the default) keeps the library
        behavior — errors propagate; the gateway always serves with a
        breaker.
    spec:
        Optional :class:`~repro.data.schema.FeatureSpec` letting the
        degraded prior pick popularity-style numeric columns by name;
        without it the prior averages all numeric features.
    degraded_prior:
        Optional ``Batch -> (n,) scores`` override for the degraded
        fallback ordering (e.g. a business-rule prior).
    fault_injector:
        Optional :class:`~repro.serving.faults.FaultInjector` threaded
        into every scorer pool — the chaos-testing seam.
    result_cache:
        Optional :class:`~repro.serving.cache.ResultCache`.  When set,
        :meth:`rank` answers repeat requests from the cache — keyed by
        ``(model name, model version, querycat intent, canonical feature
        hash)``, so a hot reload invalidates structurally (new-version
        requests miss; old entries age out of the LRU) — and
        :meth:`classify_query` memoizes intent per token sequence.
        Degraded (breaker-open) answers are never cached, and a cache
        hit is bit-identical to the compute path for the same version
        (the stored array *is* the computed one).  ``None`` (the
        default) keeps the library uncached; the gateway serves with a
        cache unless ``--cache-entries 0`` — see
        :func:`~repro.serving.server.serve_from_directory`.
    split_precompute:
        When True, models exposing
        :meth:`~repro.models.base.RankingModel.make_split_scorer` score
        through the split compiled plan: the query-independent item-side
        first-layer contribution is memoized per distinct item row
        (shared across the pool's workers), shrinking per-request FLOPs
        and weight traffic.  Split scores match the full plan to float
        rounding, not bit-for-bit; default off.
    scorer_processes / environment_dir:
        When ``scorer_processes`` > 0 **and** the routed registry entry
        was registered from a checkpoint (its metadata carries the
        checkpoint path), scoring crosses the process boundary: a
        :class:`~repro.serving.procscorer.ProcessScorerHost` spawns that
        many scorer processes which hydrate the model from disk with
        memory-mapped shared weights, and the pool's worker threads each
        proxy batches to one process over a binary-frame pipe.
        ``environment_dir`` is the checkpoint directory holding
        ``environment.json`` (required for the process path; without it,
        or for entries with no checkpoint on disk, scoring silently stays
        in-process).  ``process_start_method`` overrides the
        multiprocessing start method (default ``spawn`` — the serving
        parent is heavily threaded, so ``fork`` is reserved for tests).
    """

    def __init__(self, registry: ModelRegistry,
                 default_model: str | None = None,
                 classifier: QueryCategoryClassifier | None = None,
                 taxonomy: Taxonomy | None = None,
                 routing: dict[int, str] | None = None,
                 max_batch_rows: int = 256, max_wait_ms: float = 2.0,
                 num_workers: int = 1, adaptive_batch: bool = True,
                 min_batch_rows: int = 8,
                 max_backlog_rows: int | None = None,
                 breaker_config: BreakerConfig | None = None,
                 spec: FeatureSpec | None = None,
                 degraded_prior=None,
                 fault_injector=None,
                 result_cache: ResultCache | None = None,
                 split_precompute: bool = False,
                 scorer_processes: int = 0,
                 environment_dir=None,
                 process_start_method: str | None = None):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if scorer_processes < 0:
            raise ValueError("scorer_processes must be >= 0")
        self.registry = registry
        self.default_model = default_model
        self.classifier = classifier
        self.taxonomy = taxonomy
        self.routing = dict(routing or {})
        self.spec = spec
        self.fault_injector = fault_injector
        self._max_batch_rows = max_batch_rows
        self._max_wait_ms = max_wait_ms
        self._num_workers = num_workers
        self._adaptive_batch = adaptive_batch
        self._min_batch_rows = min_batch_rows
        self._max_backlog_rows = max_backlog_rows
        self._breaker_config = breaker_config
        self._degraded_prior = degraded_prior
        self._cache = result_cache
        self._split_precompute = split_precompute
        self._scorer_processes = int(scorer_processes)
        self._environment_dir = environment_dir
        self._process_start_method = process_start_method
        self._breakers: dict[str, CircuitBreaker] = {}
        self._degraded_responses = 0
        self._scorers: dict[tuple[str, int], ScorerPool] = {}
        self._proc_hosts: dict[tuple[str, int], ProcessScorerHost] = {}
        self._closed = False
        # Guards pool creation: two concurrent rank() calls for the same
        # model must share one ScorerPool — its workers own the compiled
        # plans, and duplicating pools would leak worker threads.  Also
        # guards breaker creation (same one-instance-per-name argument).
        self._scorers_lock = threading.Lock()

    @property
    def num_workers(self) -> int:
        """Scoring workers per model pool."""
        return self._num_workers

    # ------------------------------------------------------------------
    # Intent
    # ------------------------------------------------------------------
    def classify_query(self, tokens: np.ndarray,
                       lengths: np.ndarray | int | None = None
                       ) -> tuple[int | None, int | None]:
        """Predict (sub category, top category) for one query, or Nones.

        With a result cache configured, the (sc, tc) pair is memoized per
        token sequence — the classifier is loaded once at boot (it has no
        versioned reload path), so its answers never go stale; the TTL
        just bounds the memory.
        """
        if self.classifier is None:
            return None, None
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        if lengths is None:
            lengths = np.full(tokens.shape[0], tokens.shape[1], dtype=np.int64)
        lengths = np.atleast_1d(np.asarray(lengths, dtype=np.int64))
        cache_key = None
        if self._cache is not None:
            cache_key = ("classify",
                         canonical_key(tokens, {"lengths": lengths}))
            hit = self._cache.get(cache_key)
            if hit is not None:
                return hit
        sc = int(self.classifier.predict_sc(tokens, lengths)[0])
        tc = int(self.taxonomy.parents_of(np.asarray([sc]))[0]) \
            if self.taxonomy is not None else None
        if cache_key is not None:
            self._cache.put(cache_key, (sc, tc))
        return sc, tc

    # ------------------------------------------------------------------
    # Routing and scoring
    # ------------------------------------------------------------------
    def _select_model(self, tc: int | None, model: str | None) -> str:
        if model is not None:
            return model
        if tc is not None and tc in self.routing:
            return self.routing[tc]
        if self.default_model is not None:
            return self.default_model
        names = self.registry.names()
        if len(names) == 1:
            return names[0]
        raise ValueError("no default_model configured and routing is "
                         f"ambiguous between {names}")

    def _scorer_factory(self, model):
        """Per-worker score closures for ``model``.

        With ``split_precompute`` on and a model that supports it, every
        worker gets its own split plan but they all share one
        :class:`~repro.nn.infer.PrefixMemo` — the memo is per (model,
        version) by construction, since this factory is built per
        registry entry.  Otherwise models expose
        :meth:`~repro.models.base.RankingModel.make_scorer` (an
        independent compiled plan per call), and arbitrary scorable
        objects fall back to their bound ``score`` behind one shared
        lock, since nothing guarantees it is safe to call from several
        workers.
        """
        # Split precompute snapshots full-precision first-layer weights; a
        # quantized hydration has none (NaN placeholders), so quantized
        # models always score through the quantized compiled plans.
        if self._split_precompute \
                and not getattr(model, "_quantized_serving", False):
            make_split = getattr(model, "make_split_scorer", None)
            if make_split is not None:
                memo = PrefixMemo()
                if make_split(prefix_memo=memo) is not None:
                    return lambda: make_split(prefix_memo=memo)
        make_scorer = getattr(model, "make_scorer", None)
        if make_scorer is not None:
            return make_scorer
        lock = threading.Lock()

        def locked_score(batch: Batch) -> np.ndarray:
            with lock:
                return model.score(batch)

        return lambda: locked_score

    def _process_host_for(self, entry) -> ProcessScorerHost | None:
        """Build the multi-process backend for ``entry``, or ``None``.

        The process path needs a checkpoint on disk (children hydrate the
        model themselves) and the environment bundle's directory; entries
        registered in-memory keep the in-process factory.
        """
        if self._scorer_processes <= 0 or self._environment_dir is None:
            return None
        checkpoint = (entry.metadata or {}).get("checkpoint")
        if checkpoint is None:
            return None
        return ProcessScorerHost(
            checkpoint, self._environment_dir,
            processes=self._scorer_processes,
            version=entry.version,
            split_precompute=self._split_precompute,
            quantized=bool((entry.metadata or {}).get("quantized")),
            start_method=self._process_start_method)

    def _scorer_for(self, name: str, version: int | None) -> tuple[ScorerPool, int]:
        entry = self.registry.entry(name, version)
        stale: list[ScorerPool] = []
        stale_hosts: list[ProcessScorerHost] = []
        with self._scorers_lock:
            # A closed service must not resurrect pools: a late caller
            # (e.g. an in-flight gateway request during shutdown) would
            # otherwise build worker threads nothing ever stops.
            if self._closed:
                raise RuntimeError("RankingService is closed")
            scorer = self._scorers.get(entry.key)
            if scorer is None:
                host = self._process_host_for(entry)
                if host is not None:
                    # One pool worker thread per scorer process: each
                    # thread parks in recv_bytes (GIL released) while its
                    # child scores, so micro-batch collection overlaps
                    # cross-process scoring.
                    factory, num_workers = host.make_scorer, host.processes
                    self._proc_hosts[entry.key] = host
                else:
                    factory = self._scorer_factory(entry.model)
                    num_workers = self._num_workers
                scorer = ScorerPool(factory,
                                    num_workers=num_workers,
                                    max_batch_rows=self._max_batch_rows,
                                    max_wait_ms=self._max_wait_ms,
                                    name=f"{entry.name}-v{entry.version}",
                                    adaptive_batch=self._adaptive_batch,
                                    min_batch_rows=self._min_batch_rows,
                                    max_backlog_rows=self._max_backlog_rows,
                                    fault_injector=self.fault_injector)
                self._scorers[entry.key] = scorer
                # Hot swap: a newer version's scorer retires older ones for
                # the same name, else every swap leaks a worker thread and
                # keeps the superseded model's weights alive.  A caller
                # still pinning an old version just gets a fresh scorer on
                # its next request.
                for key in [k for k in self._scorers
                            if k[0] == name and k[1] < entry.version]:
                    stale.append(self._scorers.pop(key))
                    old_host = self._proc_hosts.pop(key, None)
                    if old_host is not None:
                        stale_hosts.append(old_host)
        for old in stale:
            old.close()                 # completes its pending requests first
        for old_host in stale_hosts:
            old_host.close()            # after the pool: no in-flight frames
        return scorer, entry.version

    def _pooled_score(self, name: str, version: int | None, candidates: Batch,
                      deadline: float | None = None) -> tuple[np.ndarray, int]:
        """Resolve the pool and score, riding out hot-swap retirement.

        A caller can lose the race with a hot swap: it resolves a pool,
        a concurrent request for a newer version retires and closes that
        pool, and the submit is refused.  Scoring is a pure function, so
        the fix is simply to re-resolve (the retired key is gone, so the
        lookup now yields a live pool) and try again.
        """
        while True:
            scorer, resolved_version = self._scorer_for(name, version)
            try:
                return scorer.score(candidates, deadline=deadline), \
                    resolved_version
            except RuntimeError:
                if not scorer.closed:
                    raise               # a model error, not the swap race

    def score(self, candidates: Batch, model: str | None = None,
              version: int | None = None,
              deadline: float | None = None) -> np.ndarray:
        """Micro-batched scores for ``candidates`` under a routed model."""
        name = self._select_model(None, model)
        return self._pooled_score(name, version, candidates,
                                  deadline=deadline)[0]

    # ------------------------------------------------------------------
    # Circuit breaker + degraded fallback
    # ------------------------------------------------------------------
    def _breaker_for(self, name: str) -> CircuitBreaker | None:
        if self._breaker_config is None:
            return None
        with self._scorers_lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(self._breaker_config)
                self._breakers[name] = breaker
            return breaker

    def _degraded_scores(self, candidates: Batch) -> np.ndarray:
        """Model-free fallback ordering while a breaker is open.

        A degraded answer must cost nothing that can fail the way the
        model just did: no pool, no compiled plan, no weights.  The
        default prior averages popularity-style numeric columns (located
        by name when ``spec`` is known, every numeric column otherwise)
        and squashes through a sigmoid so the values stay score-like in
        (0, 1) — historical CTR, sales, and brand popularity order
        candidates far better than chance and infinitely better than a
        500.  ``degraded_prior`` overrides the whole computation.
        """
        if self._degraded_prior is not None:
            return np.asarray(self._degraded_prior(candidates),
                              dtype=np.float64)
        numeric = np.atleast_2d(np.asarray(candidates.numeric,
                                           dtype=np.float64))
        if numeric.size == 0:
            return np.full(len(candidates), 0.5)
        columns = numeric
        if self.spec is not None:
            names = list(self.spec.numeric_names)
            wanted = [names.index(n) for n in _PRIOR_FEATURES if n in names]
            if wanted:
                columns = numeric[:, wanted]
        prior = columns.mean(axis=1)
        return 1.0 / (1.0 + np.exp(-prior))

    def _latest_known_version(self, name: str) -> int:
        try:
            return self.registry.latest_version(name)
        except KeyError:
            return 0

    def breaker_stats(self) -> dict[str, dict]:
        """Per-model breaker snapshots (empty without a breaker config)."""
        with self._scorers_lock:
            breakers = dict(self._breakers)
        return {name: breaker.snapshot()
                for name, breaker in sorted(breakers.items())}

    @property
    def degraded_responses(self) -> int:
        """Rank calls served by the degraded fallback since start."""
        return self._degraded_responses

    def rank(self, candidates: Batch, query_tokens: np.ndarray | None = None,
             query_lengths: np.ndarray | int | None = None, top_k: int = 10,
             model: str | None = None, version: int | None = None,
             deadline: float | None = None) -> RankingResponse:
        """Rank ``candidates`` for a query; returns the top-k best first.

        ``deadline`` (absolute :func:`time.monotonic`) propagates into the
        scorer pool: an expired request raises
        :class:`~repro.serving.scorer.DeadlineExceeded` instead of
        burning model time.  With a breaker configured, model failures
        are recorded against the routed model's breaker, and while it is
        open the response comes from the degraded prior with
        ``degraded=True`` instead of erroring.

        With a result cache configured, a repeat of ``(routed model,
        live version, intent, candidate features)`` answers from the
        cache (``cached=True``) without touching the scorer pool — the
        cached value is the previously computed score array, so hits are
        bit-identical to recomputation under the same model version.
        Entries are stored **pre-top-k**, so requests differing only in
        ``top_k`` share one entry; degraded fallback answers are never
        stored (a healthy answer must not be shadowed by an outage's
        prior).
        """
        started = time.monotonic()
        sc = tc = None
        if query_tokens is not None:
            sc, tc = self.classify_query(query_tokens, query_lengths)
        name = self._select_model(tc, model)
        cache_key = feature_digest = None
        if self._cache is not None:
            feature_digest = canonical_key(candidates.numeric,
                                           candidates.sparse)
            try:
                live_version = self.registry.entry(name, version).version
            except KeyError:
                live_version = None     # scoring will raise the same error
            if live_version is not None:
                cache_key = (name, live_version, tc, feature_digest)
                scores = self._cache.get(cache_key)
                if scores is not None:
                    return self._top_k_response(
                        scores, top_k, name, live_version, sc, tc, started,
                        cached=True)
        degraded = False
        breaker = self._breaker_for(name)
        if breaker is not None and not breaker.allow():
            scores = self._degraded_scores(candidates)
            resolved_version = self._latest_known_version(name)
            degraded = True
            with self._scorers_lock:
                self._degraded_responses += 1
        else:
            try:
                scores, resolved_version = self._pooled_score(
                    name, version, candidates, deadline=deadline)
            except BaseException as error:
                if breaker is not None:
                    if isinstance(error, _BREAKER_EXEMPT):
                        breaker.abandon()   # no verdict on model health
                    else:
                        breaker.record_failure()
                raise
            else:
                if breaker is not None:
                    breaker.record_success()
                if self._cache is not None:
                    # Store under the version that actually scored (which
                    # can differ from the looked-up one if a reload won a
                    # race in between) — an entry is only ever keyed by
                    # the version that produced it, so stale hits are
                    # structurally impossible.  Read-only copy: the hit
                    # path hands this exact array back out.
                    stored = np.array(scores, copy=True)
                    stored.setflags(write=False)
                    self._cache.put(
                        (name, resolved_version, tc, feature_digest), stored)
        return self._top_k_response(scores, top_k, name, resolved_version,
                                    sc, tc, started, degraded=degraded)

    def _top_k_response(self, scores: np.ndarray, top_k: int, name: str,
                        version: int, sc: int | None, tc: int | None,
                        started: float, degraded: bool = False,
                        cached: bool = False) -> RankingResponse:
        top_k = min(top_k, len(scores))
        order = np.argsort(-scores, kind="stable")[:top_k]
        return RankingResponse(
            indices=order,
            scores=scores[order],
            model_name=name,
            model_version=version,
            predicted_sc=sc,
            predicted_tc=tc,
            latency_ms=(time.monotonic() - started) * 1000.0,
            degraded=degraded,
            cached=cached,
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, ScorerStats]:
        """Per-model serving statistics, keyed by ``name:vVERSION``.

        For models scored by worker processes, the host's aggregated
        child counters are folded into the pool's stats (``processes``,
        ``process_restarts``, ``process_busy_seconds``), so ``/stats``
        reports where the work actually ran.
        """
        with self._scorers_lock:
            scorers = dict(self._scorers)
            hosts = dict(self._proc_hosts)
        result = {}
        for (name, version), scorer in scorers.items():
            stats = scorer.stats()
            host = hosts.get((name, version))
            if host is not None:
                aggregate = host.stats()
                stats.processes = aggregate["processes"]
                stats.process_restarts = aggregate["process_restarts"]
                stats.process_busy_seconds = aggregate["busy_seconds"]
            try:
                entry = self.registry.entry(name, version)
            except KeyError:
                entry = None
            stats.quantized = bool(entry is not None
                                   and (entry.metadata or {}).get("quantized"))
            result[f"{name}:v{version}"] = stats
        return result

    @property
    def result_cache(self) -> ResultCache | None:
        """The configured result cache, or ``None`` when uncached."""
        return self._cache

    def cache_stats(self) -> dict:
        """Result-cache counters for ``/stats`` (zeros when uncached)."""
        if self._cache is None:
            return {"enabled": False, "entries": 0, "max_entries": 0,
                    "ttl_s": 0.0, "hits": 0, "misses": 0, "evictions": 0,
                    "expired": 0, "hit_rate": 0.0}
        return {"enabled": True, **self._cache.snapshot()}

    def overload_status(self) -> float | None:
        """Pre-parse admission check: retry-after seconds, or ``None``.

        Returns the worst live pool's ``retry_after_s`` when any pool's
        backlog has reached its admission bound, else ``None`` (admit).
        This is the gateway's cheap gate — one lock-free int read per
        pool — run *before* any JSON parsing cost is spent on a request
        that would only be refused at submit time anyway.  A request the
        check admits can still lose the race to a concurrent burst; the
        pool's own bound in :meth:`ScorerPool.submit` is the backstop.
        """
        with self._scorers_lock:
            scorers = list(self._scorers.values())
        worst = None
        for scorer in scorers:
            bound = scorer.max_backlog_rows
            if bound is not None and scorer.backlog_rows >= bound:
                retry_after = scorer.retry_after_s()
                if worst is None or retry_after > worst:
                    worst = retry_after
        return worst

    def close(self) -> None:
        """Stop every scorer worker (pending requests complete first).

        Idempotent; after close every scoring call raises rather than
        silently rebuilding a pool.
        """
        with self._scorers_lock:
            self._closed = True
            scorers, self._scorers = dict(self._scorers), {}
            hosts, self._proc_hosts = dict(self._proc_hosts), {}
        for scorer in scorers.values():
            scorer.close()
        # Hosts after pools: the pools' worker threads are the only frame
        # senders, and they are joined by now.
        for host in hosts.values():
            host.close()

    def __enter__(self) -> "RankingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
