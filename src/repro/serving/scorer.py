"""Micro-batched scoring: the latency/throughput workhorse of the serving layer.

Single-request scoring on the compiled plan is memory-bound — every request
re-streams the full weight matrices.  Micro-batching amortizes that stream
across concurrent requests: :class:`BatchScorer` queues incoming score
requests and a single worker drains them in batches of up to
``max_batch_rows`` rows, waiting at most ``max_wait_ms`` for stragglers
(measured on the paper tower: ≈54 µs/row at batch 1 vs ≈10 µs/row at batch
32 in float64 — the batching itself is a >3x per-row win before dtype even
enters).  The worker also serializes access to the compiled plan's scratch
buffers, which are not thread-safe.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..data.dataset import Batch

__all__ = ["BatchScorer", "ScorerStats", "concat_batches"]


def concat_batches(batches: list[Batch]) -> Batch:
    """Concatenate request batches into one scoring batch (row order kept)."""
    if len(batches) == 1:
        return batches[0]
    return Batch(
        numeric=np.concatenate([b.numeric for b in batches]),
        sparse={key: np.concatenate([b.sparse[key] for b in batches])
                for key in batches[0].sparse},
        labels=np.concatenate([b.labels for b in batches]),
        session_ids=np.concatenate([b.session_ids for b in batches]),
    )


@dataclass
class ScorerStats:
    """Aggregate serving statistics since scorer start."""

    requests: int = 0                   # score requests completed
    rows: int = 0                       # candidate rows scored
    batches: int = 0                    # model invocations
    busy_seconds: float = 0.0           # time inside the score function
    mean_latency_ms: float = 0.0        # request submit -> result
    p95_latency_ms: float = 0.0
    max_latency_ms: float = 0.0

    @property
    def mean_batch_rows(self) -> float:
        """Average rows per model invocation (micro-batching effectiveness)."""
        return self.rows / self.batches if self.batches else 0.0

    @property
    def throughput_rows_per_s(self) -> float:
        """Rows scored per second of model time."""
        return self.rows / self.busy_seconds if self.busy_seconds > 0 else 0.0


class _Request:
    __slots__ = ("batch", "future", "enqueued_at")

    def __init__(self, batch: Batch):
        self.batch = batch
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()


_SHUTDOWN = object()
_LATENCY_WINDOW = 4096                  # latency samples kept for percentiles


def _resolve(future: Future, result=None, error=None) -> None:
    """Complete a future, tolerating callers that already cancelled it."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except Exception:
        pass                            # cancelled/raced future: nothing to do


class BatchScorer:
    """Queue + worker that micro-batches score requests for one model.

    Parameters
    ----------
    score_fn:
        ``Batch -> (n,) scores``; typically a model's compiled
        :meth:`~repro.models.base.RankingModel.score`.
    max_batch_rows:
        Flush the pending micro-batch once it holds this many rows.
    max_wait_ms:
        How long the worker waits for more requests after the first one
        before scoring what it has.  0 scores each request immediately
        (still serialized, still counted in stats).

    ``submit`` returns a :class:`~concurrent.futures.Future`; ``score`` is
    the blocking convenience wrapper.  Use as a context manager (or call
    :meth:`close`) to stop the worker.
    """

    def __init__(self, score_fn, max_batch_rows: int = 256,
                 max_wait_ms: float = 2.0, name: str = "scorer"):
        if max_batch_rows <= 0:
            raise ValueError("max_batch_rows must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.name = name
        self._score_fn = score_fn
        self._max_batch_rows = int(max_batch_rows)
        self._max_wait = max_wait_ms / 1000.0
        self._queue: queue.Queue = queue.Queue()
        # Serializes submit against close: without it a submit could pass
        # the closed check, lose the CPU, and enqueue after the worker
        # drained — leaving its future forever unresolved.
        self._submit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._rows = 0
        self._batches = 0
        self._busy_seconds = 0.0
        self._latencies: list[float] = []
        self._closed = False
        self._worker = threading.Thread(target=self._loop, daemon=True,
                                        name=f"BatchScorer-{name}")
        self._worker.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, batch: Batch) -> Future:
        """Enqueue a batch for scoring; resolves to its (n,) score array."""
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("BatchScorer is closed")
            request = _Request(batch)
            self._queue.put(request)
        return request.future

    def score(self, batch: Batch) -> np.ndarray:
        """Blocking score: submit and wait for the result."""
        return self.submit(batch).result()

    def stats(self) -> ScorerStats:
        """Snapshot of the aggregate serving statistics."""
        with self._stats_lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            stats = ScorerStats(
                requests=self._requests, rows=self._rows, batches=self._batches,
                busy_seconds=self._busy_seconds)
            if latencies.size:
                stats.mean_latency_ms = float(latencies.mean() * 1000.0)
                stats.p95_latency_ms = float(np.percentile(latencies, 95) * 1000.0)
                stats.max_latency_ms = float(latencies.max() * 1000.0)
            return stats

    def close(self) -> None:
        """Stop the worker; pending requests are completed first."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._worker.join()

    def __enter__(self) -> "BatchScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _collect(self, first: _Request) -> tuple[list[_Request], bool]:
        """Gather requests up to the row/wait budget; True means shut down."""
        pending = [first]
        rows = len(first.batch)
        deadline = time.monotonic() + self._max_wait
        while rows < self._max_batch_rows:
            remaining = deadline - time.monotonic()
            try:
                item = self._queue.get(block=remaining > 0, timeout=max(remaining, 0))
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return pending, True
            pending.append(item)
            rows += len(item.batch)
        return pending, False

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._drain()
                return
            pending, shutdown = self._collect(item)
            self._run_batch(pending)
            if shutdown:
                self._drain()
                return

    def _drain(self) -> None:
        """Complete any requests that raced past the shutdown sentinel."""
        leftovers: list[_Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                leftovers.append(item)
        if leftovers:
            self._run_batch(leftovers)

    def _run_batch(self, pending: list[_Request]) -> None:
        """Score one micro-batch.  Must never raise: an escaping exception
        would kill the worker thread and hang every current and future
        caller, so *any* failure — merging, scoring, bad score shape — is
        routed to the waiting futures instead."""
        try:
            merged = concat_batches([request.batch for request in pending])
            started = time.monotonic()
            scores = np.asarray(self._score_fn(merged))
            busy = time.monotonic() - started
            if scores.ndim == 0 or scores.shape[0] != len(merged):
                raise ValueError(
                    f"score_fn returned shape {scores.shape} for {len(merged)} rows")
        except BaseException as error:  # propagate to every waiting caller
            for request in pending:
                _resolve(request.future, error=error)
            return
        finished = time.monotonic()
        offset = 0
        for request in pending:
            count = len(request.batch)
            # Copy the slice: the compiled plan owns (and will overwrite)
            # the backing buffer on its next call.
            _resolve(request.future, result=scores[offset:offset + count].copy())
            offset += count
        with self._stats_lock:
            self._requests += len(pending)
            self._rows += len(merged)
            self._batches += 1
            self._busy_seconds += busy
            self._latencies.extend(finished - r.enqueued_at for r in pending)
            if len(self._latencies) > _LATENCY_WINDOW:
                del self._latencies[:-_LATENCY_WINDOW]
