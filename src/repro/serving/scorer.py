"""Micro-batched scoring: the latency/throughput workhorse of the serving layer.

Single-request scoring on the compiled plan is memory-bound — every request
re-streams the full weight matrices.  Micro-batching amortizes that stream
across concurrent requests: score requests land on a shared queue and a
worker drains them in batches of up to ``max_batch_rows`` rows, waiting at
most ``max_wait_ms`` for stragglers (measured on the paper tower: ≈54 µs/row
at batch 1 vs ≈10 µs/row at batch 32 in float64 — the batching itself is a
>3x per-row win before dtype even enters).

Two front-ends share that machinery:

* :class:`BatchScorer` — one worker around one score function (the PR 3
  API).  The single worker also serializes access to a compiled plan's
  scratch buffers, which are not thread-safe.
* :class:`ScorerPool` — N workers, each owning its *own* score closure
  built by a caller-supplied factory (compiled plans are cheap; see
  :meth:`repro.models.base.RankingModel.make_scorer`).  Collection is
  pipelined against scoring: a collector token lets exactly one worker
  assemble a micro-batch at a time (racing collectors would shred the
  queue into fragment batches and give up the amortization that justifies
  micro-batching), while the workers *holding finished batches* score
  concurrently.  One worker's coalescing wait therefore overlaps the
  others' scoring even on one core, and on multi-core BLAS the scoring
  itself parallelizes too.

The pool's micro-batch cap is **adaptive by default**: recomputed at
collect time as ``clamp(ceil(backlog_rows / workers), min_batch_rows,
max_batch_rows)``, so an idle pool scores immediately while a backed-up
pool splits its backlog into per-worker shares — no hand-tuned
per-deployment ``max_batch_rows`` required (see
:meth:`ScorerPool._collect_cap` for why the divisor is the whole pool).
Pass ``adaptive_batch=False`` to pin the static cap (what
:class:`BatchScorer` does, preserving its PR 3 contract exactly).
"""

from __future__ import annotations

import collections
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..data.dataset import Batch
from .faults import WorkerKilled

__all__ = ["BatchScorer", "DeadlineExceeded", "PoolOverloaded", "ScorerPool",
           "ScorerStats", "concat_batches", "latency_percentile"]


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before its rows reached a model.

    Raised into the caller's future when a collector drops an expired
    queue entry (or immediately by ``submit`` when the deadline is
    already past) — scoring rows nobody is waiting for burns pool
    capacity the live requests behind them need.  The gateway maps this
    to a structured 504; like :class:`PoolOverloaded` it is not evidence
    the model is unhealthy, so the circuit breaker ignores it.
    """

    def __init__(self, late_by_s: float = 0.0):
        super().__init__(
            f"request deadline exceeded ({late_by_s * 1000.0:.1f} ms late)")
        self.late_by_s = late_by_s


class PoolOverloaded(RuntimeError):
    """Submission refused: the pool's row backlog is at its admission bound.

    Backpressure, not failure — the caller should shed the request (the
    gateway answers a structured 429) and retry after ``retry_after_s``,
    which estimates how long the pool needs to drain its current backlog
    at its recently observed drain rate.
    """

    def __init__(self, name: str, backlog_rows: int, max_backlog_rows: int,
                 retry_after_s: float):
        super().__init__(
            f"scorer pool {name!r} backlog of {backlog_rows} rows is at its "
            f"{max_backlog_rows}-row admission bound")
        self.name = name
        self.backlog_rows = backlog_rows
        self.max_backlog_rows = max_backlog_rows
        self.retry_after_s = retry_after_s


def concat_batches(batches: list[Batch]) -> Batch:
    """Concatenate request batches into one scoring batch (row order kept)."""
    if len(batches) == 1:
        return batches[0]
    return Batch(
        numeric=np.concatenate([b.numeric for b in batches]),
        sparse={key: np.concatenate([b.sparse[key] for b in batches])
                for key in batches[0].sparse},
        labels=np.concatenate([b.labels for b in batches]),
        session_ids=np.concatenate([b.session_ids for b in batches]),
    )


def latency_percentile(samples: np.ndarray, q: float) -> float:
    """Percentile of latency ``samples`` with pinned small-window semantics.

    Uses the nearest-rank-above method, so the reported value is always a
    latency that was actually observed — with one sample every percentile
    is that sample, and p95 of a tiny window equals its max instead of an
    interpolated value below anything measured.  An **empty window is
    defined as 0.0** (no traffic yet / stats just rotated) rather than
    letting ``np.percentile``'s empty-array error leak to callers.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return 0.0
    return float(np.percentile(samples, q, method="higher"))


@dataclass
class ScorerStats:
    """Aggregate serving statistics since scorer start.

    Latency fields summarize a sliding window of the most recent request
    latencies (``latency_samples`` of them, capped per worker); when the
    window is empty they are all exactly 0.0 — see
    :func:`latency_percentile` for the small-sample semantics.
    """

    requests: int = 0                   # score requests completed
    rows: int = 0                       # candidate rows scored
    batches: int = 0                    # model invocations
    busy_seconds: float = 0.0           # time inside the score function
    latency_samples: int = 0            # samples behind the latency fields
    mean_latency_ms: float = 0.0        # request submit -> result
    p95_latency_ms: float = 0.0
    max_latency_ms: float = 0.0
    workers: int = 1                    # workers aggregated into this view
    # Admission-control view (pool-level; per-worker snapshots leave the
    # defaults): the live queue state behind the overload gauges.
    backlog_rows: int = 0               # rows enqueued but not yet collected
    max_backlog_rows: int | None = None  # admission bound (None = unbounded)
    shed_requests: int = 0              # submissions refused at the bound
    shed_rows: int = 0                  # rows those submissions carried
    drain_rate_rows_per_s: float = 0.0  # recent wall-clock drain rate
    # Fault-tolerance view (pool-level, like the admission counters).
    worker_restarts: int = 0            # dead workers respawned by the supervisor
    averted_respawns: int = 0           # respawns abandoned because close() won
    expired_requests: int = 0           # requests dropped at their deadline
    expired_rows: int = 0               # rows those requests carried
    lost_resolutions: int = 0           # futures already cancelled/raced at resolve
    # Multi-process view (zero when scoring stays in-process): the parent
    # aggregates its scorer processes' counters into these so the pinned
    # /stats schema stays truthful about where the work actually ran.
    processes: int = 0                  # scorer processes behind this pool
    process_restarts: int = 0           # dead scorer processes respawned
    process_busy_seconds: float = 0.0   # child-measured time inside the plan
    # Plan lane: True when this pool scores through int8 quantized plans
    # (the model hydrated from a .quant.npz artifact).
    quantized: bool = False

    @property
    def mean_batch_rows(self) -> float:
        """Average rows per model invocation (micro-batching effectiveness)."""
        return self.rows / self.batches if self.batches else 0.0

    @property
    def throughput_rows_per_s(self) -> float:
        """Rows scored per second of model time."""
        return self.rows / self.busy_seconds if self.busy_seconds > 0 else 0.0

    @staticmethod
    def from_window(requests: int, rows: int, batches: int,
                    busy_seconds: float, latencies: np.ndarray,
                    workers: int = 1) -> "ScorerStats":
        """Build stats from raw counters + a latency window (may be empty)."""
        latencies = np.asarray(latencies, dtype=np.float64)
        stats = ScorerStats(requests=requests, rows=rows, batches=batches,
                            busy_seconds=busy_seconds,
                            latency_samples=int(latencies.size),
                            workers=workers)
        if latencies.size:
            stats.mean_latency_ms = float(latencies.mean() * 1000.0)
            stats.p95_latency_ms = latency_percentile(latencies, 95) * 1000.0
            stats.max_latency_ms = float(latencies.max() * 1000.0)
        return stats


class _Request:
    __slots__ = ("batch", "future", "enqueued_at", "deadline")

    def __init__(self, batch: Batch, deadline: float | None = None):
        self.batch = batch
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()
        self.deadline = deadline        # absolute time.monotonic(), or None


_SHUTDOWN = object()
_LATENCY_WINDOW = 4096                  # latency samples kept per worker
_DRAIN_WINDOW_S = 5.0                   # window behind drain_rate_rows_per_s
_SUPERVISE_INTERVAL_S = 0.25            # dead-worker sweep cadence


def _resolve(future: Future, result=None, error=None) -> bool:
    """Complete a future; False when it was already cancelled or resolved.

    The False case is a *lost response*: someone raced us (cancelled the
    future, or a dying worker's cleanup already failed it).  Callers on
    the normal resolution path count it via
    :meth:`ScorerPool._note_lost_resolution` so the loss shows up on
    ``/stats`` instead of vanishing into a bare ``pass``.
    """
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except Exception:
        return False                    # cancelled/raced future
    return True


class _Worker:
    """One scoring worker: a thread + its own score closure and counters.

    The counters are written only by the worker thread; the lock orders
    those writes against concurrent :meth:`snapshot` readers.
    """

    def __init__(self, pool: "ScorerPool", index: int, score_fn):
        self.index = index
        self._pool = pool
        self._score_fn = score_fn
        self._lock = threading.Lock()
        self._requests = 0
        self._rows = 0
        self._batches = 0
        self._busy_seconds = 0.0
        self._latencies: list[float] = []
        self.thread = threading.Thread(
            target=self._loop, daemon=True,
            name=f"{type(pool).__name__}-{pool.name}-{index}")

    # -- stats ----------------------------------------------------------
    def snapshot(self) -> ScorerStats:
        with self._lock:
            return ScorerStats.from_window(
                self._requests, self._rows, self._batches,
                self._busy_seconds, np.asarray(self._latencies))

    def latency_window(self) -> np.ndarray:
        with self._lock:
            return np.asarray(self._latencies, dtype=np.float64)

    # -- loop -----------------------------------------------------------
    def _loop(self) -> None:
        while True:
            # The collector token serializes batch assembly (preserving
            # the single-worker coalescing semantics); scoring below runs
            # token-free, so it pipelines with the next worker's collect.
            # ``pending`` is owned by this frame so that if the thread
            # dies mid-iteration (a WorkerKilled injection, or a bug) the
            # except block can still fail every future the worker holds —
            # a dying worker must never take responses to the grave.  The
            # ``with`` block guarantees the collector token itself is
            # released on any exit path.
            pending: list[_Request] = []
            shutdown = False
            try:
                with self._pool._collect_lock:
                    item = self._pool._queue.get()
                    if item is _SHUTDOWN:
                        return
                    self._pool._note_dequeued(item)
                    shutdown = self._collect(item, pending)
                self._run_batch(pending)
            except BaseException as error:
                # Emergency cleanup for a dying worker.  _run_batch has
                # already resolved (and cleared) anything it handled, so
                # whatever is left here is genuinely unresolved; no
                # lost-resolution counting — failing these futures is the
                # *correct* outcome, not a race.
                for request in pending:
                    _resolve(request.future, error=error)
                raise               # thread dies; the supervisor respawns it
            if shutdown:
                return

    def _collect(self, first: _Request, pending: list[_Request]) -> bool:
        """Gather requests up to the row/wait budget into ``pending``;
        True means shut down.

        The row cap is re-read from the pool every iteration: under the
        adaptive policy it tracks the live backlog, so a queue that backs
        up mid-collect widens this very batch instead of the next one.

        Deadline enforcement lives here: an entry whose deadline already
        passed is dropped — its future fails with
        :class:`DeadlineExceeded` and it never joins the micro-batch, so
        no model time is spent on an answer nobody is waiting for.
        ``pending`` is caller-owned (not returned) so the worker loop can
        fail whatever was gathered if this thread dies mid-collect.
        """
        rows = self._admit(first, pending)
        if not pending and self._pool._queue.empty():
            return False            # lone expired entry: nothing to wait for
        deadline = time.monotonic() + self._pool._max_wait
        while rows < self._pool._collect_cap(rows):
            remaining = deadline - time.monotonic()
            try:
                item = self._pool._queue.get(block=remaining > 0,
                                             timeout=max(remaining, 0))
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return True
            self._pool._note_dequeued(item)
            rows += self._admit(item, pending)
        return False

    def _admit(self, item: _Request, pending: list[_Request]) -> int:
        """Append ``item`` to the micro-batch unless it already expired;
        returns the rows it contributed (0 for a dropped entry)."""
        if item.deadline is not None:
            late_by = time.monotonic() - item.deadline
            if late_by >= 0.0:
                self._pool._note_expired(item)
                if not _resolve(item.future, error=DeadlineExceeded(late_by)):
                    self._pool._note_lost_resolution()
                return 0
        pending.append(item)
        return len(item.batch)

    def _run_batch(self, pending: list[_Request]) -> None:
        """Score one micro-batch.  Must not raise — an escaping exception
        kills the worker thread — so *any* failure (merging, scoring, bad
        score shape, an injected fault) is routed to the waiting futures
        instead.  The one deliberate exception: :class:`WorkerKilled` is
        re-raised *after* every future is resolved, so fault injection
        can prove the supervisor's respawn path without ever losing a
        response.  Consumes ``pending`` (clears it) once every future is
        resolved, so the loop's emergency cleanup never double-fails."""
        if not pending:
            return                  # every collected entry expired
        try:
            merged = concat_batches([request.batch for request in pending])
            started = time.monotonic()
            injector = self._pool._fault_injector
            if injector is not None:
                injector.before_score()
            scores = np.asarray(self._score_fn(merged))
            busy = time.monotonic() - started
            if scores.ndim == 0 or scores.shape[0] != len(merged):
                raise ValueError(
                    f"score_fn returned shape {scores.shape} for {len(merged)} rows")
        except BaseException as error:  # propagate to every waiting caller
            for request in pending:
                if not _resolve(request.future, error=error):
                    self._pool._note_lost_resolution()
            pending.clear()
            if isinstance(error, WorkerKilled):
                raise               # deliberate worker death (fault injection)
            return
        finished = time.monotonic()
        self._pool._note_drained(len(merged), finished)
        offset = 0
        for request in pending:
            count = len(request.batch)
            # Copy the slice: the compiled plan owns (and will overwrite)
            # the backing buffer on its next call.
            if not _resolve(request.future,
                            result=scores[offset:offset + count].copy()):
                self._pool._note_lost_resolution()
            offset += count
        with self._lock:
            self._requests += len(pending)
            self._rows += len(merged)
            self._batches += 1
            self._busy_seconds += busy
            self._latencies.extend(finished - r.enqueued_at for r in pending)
            if len(self._latencies) > _LATENCY_WINDOW:
                del self._latencies[:-_LATENCY_WINDOW]
        pending.clear()                 # fully handled: see the docstring


class ScorerPool:
    """N micro-batching workers around one shared request queue.

    Parameters
    ----------
    scorer_factory:
        Zero-argument callable returning a ``Batch -> (n,) scores``
        closure.  It is invoked once per worker *on the constructing
        thread* (so a failing compile raises here, not in a daemon
        thread), and each worker owns its closure exclusively — pass
        :meth:`repro.models.base.RankingModel.make_scorer` to score one
        model from several workers, each on an independent compiled plan.
    num_workers:
        Worker thread count.  While one worker (the collector) assembles
        the next micro-batch, the others score the batches they already
        hold — so the coalescing wait pipelines with scoring, and on
        multi-core BLAS the scoring itself parallelizes.
    max_batch_rows:
        A worker flushes its pending micro-batch once it holds this many
        rows.  Under the adaptive policy (the default) this is the upper
        clamp; with ``adaptive_batch=False`` it is the fixed per-worker
        cap (the PR 4 behavior, kept as the explicit override).
    max_wait_ms:
        How long a worker waits for more requests after its first one
        before scoring what it has.  0 scores each request immediately
        (still micro-batched when the queue is backed up).
    adaptive_batch:
        When True, the collect cap is recomputed at collect time as
        ``clamp(ceil(backlog_rows / workers), min_batch_rows,
        max_batch_rows)`` — an idle pool scores small batches immediately
        (latency), a backed-up pool splits its backlog into per-worker
        shares (throughput), and no per-deployment ``max_batch_rows``
        tuning is needed.
    min_batch_rows:
        Adaptive lower clamp: with backlog below this, a worker still
        waits out ``max_wait_ms`` for stragglers to coalesce, preserving
        the micro-batching win at light load.
    max_backlog_rows:
        Admission bound: with this many rows already enqueued, further
        submissions raise :class:`PoolOverloaded` instead of queueing —
        an unbounded backlog is how a traffic burst turns into an
        unbounded p99.  ``None`` (the default) keeps the pre-admission
        unbounded behavior for library callers; the gateway always
        serves with a bound.
    fault_injector:
        Optional :class:`~repro.serving.faults.FaultInjector` whose
        ``before_score`` hook runs ahead of every model invocation —
        the chaos-testing seam.  ``None`` (the default) costs one
        attribute read per batch.

    Every pool runs a **supervisor**: a daemon thread that sweeps for
    dead worker threads every ~250 ms and respawns them with a *fresh*
    closure from ``scorer_factory`` (a worker that died mid-score may
    have left its compiled plan's scratch buffers in an undefined
    state).  A respawn is counted in ``stats().worker_restarts``, and a
    dead worker's lifetime counters are folded into the pool totals so
    ``/stats`` counters stay monotonic across restarts.

    ``submit`` returns a :class:`~concurrent.futures.Future`; ``score`` is
    the blocking convenience wrapper.  Use as a context manager (or call
    :meth:`close`) to stop the workers.
    """

    def __init__(self, scorer_factory, num_workers: int = 4,
                 max_batch_rows: int = 256, max_wait_ms: float = 2.0,
                 name: str = "pool", adaptive_batch: bool = True,
                 min_batch_rows: int = 8,
                 max_backlog_rows: int | None = None,
                 fault_injector=None):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if max_batch_rows <= 0:
            raise ValueError("max_batch_rows must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if min_batch_rows <= 0:
            raise ValueError("min_batch_rows must be positive")
        if max_backlog_rows is not None and max_backlog_rows <= 0:
            raise ValueError("max_backlog_rows must be positive (or None)")
        self.name = name
        self._max_batch_rows = int(max_batch_rows)
        self._max_wait = max_wait_ms / 1000.0
        self._adaptive = bool(adaptive_batch)
        self._min_batch_rows = min(int(min_batch_rows), self._max_batch_rows)
        self._max_backlog_rows = (int(max_backlog_rows)
                                  if max_backlog_rows is not None else None)
        # Live backlog (rows sitting in the queue) behind the adaptive cap
        # and the admission bound; shed counters and the drain-rate window
        # share the same lock.
        self._state_lock = threading.Lock()
        self._backlog_rows = 0
        self._shed_requests = 0
        self._shed_rows = 0
        self._drained: collections.deque[tuple[float, int]] = collections.deque()
        # Fault-tolerance counters (under _state_lock); the retired
        # totals accumulate counters from workers the supervisor
        # replaced, keeping /stats monotonic across restarts.
        self._worker_restarts = 0
        self._averted_respawns = 0
        self._expired_requests = 0
        self._expired_rows = 0
        self._lost_resolutions = 0
        self._retired = ScorerStats(workers=0)
        self._queue: queue.Queue = queue.Queue()
        # Collector token: at most one worker assembles a micro-batch at
        # a time (see the worker loop).
        self._collect_lock = threading.Lock()
        # Serializes submit against close: without it a submit could pass
        # the closed check, lose the CPU, and enqueue after the workers
        # exited — leaving its future forever unresolved.
        self._submit_lock = threading.Lock()
        self._closed = False
        self._fault_injector = fault_injector
        self._scorer_factory = scorer_factory
        self._workers = [_Worker(self, index, scorer_factory())
                         for index in range(num_workers)]
        for worker in self._workers:
            worker.thread.start()
        # Supervisor: respawns dead workers (see the class docstring).
        self._supervisor_stop = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, daemon=True,
            name=f"{type(self).__name__}-{name}-supervisor")
        self._supervisor.start()

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` began; submissions will be refused."""
        return self._closed

    @property
    def adaptive_batch(self) -> bool:
        """True when the collect cap follows the backlog instead of the
        static ``max_batch_rows``."""
        return self._adaptive

    @property
    def max_backlog_rows(self) -> int | None:
        """Admission bound in rows (``None`` = unbounded)."""
        return self._max_backlog_rows

    @property
    def backlog_rows(self) -> int:
        """Rows enqueued but not yet collected into a micro-batch.

        Lock-free read of one int: this is the admission gate's hot path,
        read by the gateway *before* any JSON parsing cost is spent."""
        return self._backlog_rows

    @property
    def shed_requests(self) -> int:
        """Submissions refused at the admission bound since start."""
        return self._shed_requests

    @property
    def shed_rows(self) -> int:
        """Rows carried by refused submissions since start."""
        return self._shed_rows

    @property
    def worker_restarts(self) -> int:
        """Dead workers respawned by the supervisor since start."""
        return self._worker_restarts

    @property
    def averted_respawns(self) -> int:
        """Respawns abandoned because close() won the race (see
        :meth:`_respawn_dead_workers`); each one is a leaked-thread
        near-miss the lock converted into a clean no-op."""
        return self._averted_respawns

    # ------------------------------------------------------------------
    # Worker supervision
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        """Supervisor loop: sweep for dead workers until close()."""
        while not self._supervisor_stop.wait(_SUPERVISE_INTERVAL_S):
            self._respawn_dead_workers()

    def _respawn_dead_workers(self) -> None:
        """Replace every dead worker thread with a freshly built one.

        The supervisor thread is the only mutator of ``_workers`` after
        construction, so this needs no lock against itself; concurrent
        ``stats()`` readers see either the dying worker or its
        replacement, both of which snapshot safely.  A failing
        ``scorer_factory`` (e.g. the model was hot-swapped away
        mid-crash) leaves the slot dead and is retried on the next
        sweep rather than killing the supervisor.
        """
        for index, worker in enumerate(self._workers):
            if worker.thread.is_alive():
                continue
            if self._closed:
                return              # close() owns worker lifetime now
            try:
                replacement = _Worker(self, index, self._scorer_factory())
            except Exception:
                continue            # factory failed; retry next sweep
            # Fold the dead worker's lifetime counters into the retired
            # totals before dropping our reference to it.
            final = worker.snapshot()
            with self._state_lock:
                # Re-check closed under the same lock close() takes when it
                # flips the flag: the factory call above can be slow (it
                # compiles a scoring plan), and a close() landing between
                # the top-of-loop check and thread.start() would enumerate
                # _workers without the replacement — a worker thread nobody
                # ever sentinels or joins.  Holding _state_lock across
                # publish + start makes check→start atomic against close.
                if self._closed:
                    self._averted_respawns += 1
                    return
                self._retired.requests += final.requests
                self._retired.rows += final.rows
                self._retired.batches += final.batches
                self._retired.busy_seconds += final.busy_seconds
                self._worker_restarts += 1
                self._workers[index] = replacement
                replacement.thread.start()

    def _note_expired(self, request: _Request) -> None:
        with self._state_lock:
            self._expired_requests += 1
            self._expired_rows += len(request.batch)

    def _note_lost_resolution(self) -> None:
        with self._state_lock:
            self._lost_resolutions += 1

    # ------------------------------------------------------------------
    # Drain rate (behind Retry-After)
    # ------------------------------------------------------------------
    def _note_drained(self, rows: int, finished: float) -> None:
        with self._state_lock:
            self._drained.append((finished, rows))
            cutoff = finished - _DRAIN_WINDOW_S
            while self._drained and self._drained[0][0] < cutoff:
                self._drained.popleft()

    def drain_rate_rows_per_s(self) -> float:
        """Rows scored per wall-clock second over the recent window.

        Unlike :attr:`ScorerStats.throughput_rows_per_s` (rows per second
        of *model* time since start), this is the pool's current
        end-to-end drain speed — the number a shed client's ``Retry-After``
        must be derived from.  0.0 when nothing drained recently.
        """
        now = time.monotonic()
        with self._state_lock:
            cutoff = now - _DRAIN_WINDOW_S
            while self._drained and self._drained[0][0] < cutoff:
                self._drained.popleft()
            if not self._drained:
                return 0.0
            rows = sum(drained for _, drained in self._drained)
            span = now - self._drained[0][0]
        return rows / max(span, 1e-3)

    def retry_after_s(self) -> float:
        """Seconds a shed caller should wait before retrying.

        Time to drain the current backlog at the recent drain rate,
        clamped to [0.5, 30]: never tell a client "now" while the queue
        is full, never push it out further than a load balancer's
        health-check horizon.  With no recent drains (a pool that just
        seized up) the floor applies.
        """
        rate = self.drain_rate_rows_per_s()
        backlog = self._backlog_rows
        if rate <= 0.0:
            return 1.0
        return min(max(backlog / rate, 0.5), 30.0)

    # ------------------------------------------------------------------
    # Adaptive collect cap
    # ------------------------------------------------------------------
    def _note_dequeued(self, request: _Request) -> None:
        with self._state_lock:
            self._backlog_rows -= len(request.batch)

    def _collect_cap(self, held_rows: int) -> int:
        """Row cap for the micro-batch being assembled right now.

        Static policy: ``max_batch_rows``, unconditionally.  Adaptive
        policy: split the outstanding work (rows already held + rows
        still queued) into per-worker shares —
        ``cap = clamp(ceil(backlog / workers), min_batch_rows,
        max_batch_rows)``.

        The divisor is the whole pool, not just the workers idle this
        instant: a busy worker rejoins the queue within one batch, so on
        the horizon of the batch being assembled every worker is an idle
        worker.  Dividing by only the currently-idle count hands the last
        free worker the entire backlog (cap = backlog/1) and serializes
        exactly the load a pool should spread; per-pool-share batches
        self-balance instead — early finishers come back for another
        share, so temporal skew in arrivals evens out (measured ≈25%
        faster than idle-count division on the cap-policy bench).

        With no backlog the cap collapses to ``min_batch_rows``, so an
        idle pool answers immediately after at most one straggler wait
        instead of sitting on ``max_wait_ms`` hoping to fill a maximal
        batch.
        """
        if not self._adaptive:
            return self._max_batch_rows
        with self._state_lock:
            backlog = self._backlog_rows
        outstanding = held_rows + max(backlog, 0)
        cap = -(-outstanding // len(self._workers))     # ceil division
        return max(self._min_batch_rows, min(cap, self._max_batch_rows))

    def current_batch_cap(self) -> int:
        """The cap a collect starting now would use (introspection)."""
        return self._collect_cap(0)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, batch: Batch, deadline: float | None = None) -> Future:
        """Enqueue a batch for scoring; resolves to its (n,) score array.

        With ``max_backlog_rows`` set, a submission that would push the
        backlog past the bound raises :class:`PoolOverloaded` instead of
        queueing (and is counted in :attr:`shed_requests`) — the queue
        stays bounded, so queueing delay does too.

        ``deadline`` is an absolute :func:`time.monotonic` instant: a
        submission whose deadline already passed raises
        :class:`DeadlineExceeded` immediately, and a queued request whose
        deadline passes before a collector reaches it has its future
        failed with :class:`DeadlineExceeded` instead of being scored.
        """
        rows = len(batch)
        with self._submit_lock:
            if self._closed:
                raise RuntimeError(f"{type(self).__name__} is closed")
            if deadline is not None:
                late_by = time.monotonic() - deadline
                if late_by >= 0.0:
                    with self._state_lock:
                        self._expired_requests += 1
                        self._expired_rows += rows
                    raise DeadlineExceeded(late_by)
            # Count the rows before they become visible to a collector,
            # so the backlog counter can never go negative.
            with self._state_lock:
                # An empty backlog always admits (even one request larger
                # than the bound — refusing it forever would deadlock the
                # caller, and an idle pool can absorb it immediately).
                if self._max_backlog_rows is not None and self._backlog_rows \
                        and self._backlog_rows + rows > self._max_backlog_rows:
                    self._shed_requests += 1
                    self._shed_rows += rows
                    backlog = self._backlog_rows
                    overloaded = True
                else:
                    self._backlog_rows += rows
                    overloaded = False
            if overloaded:
                raise PoolOverloaded(self.name, backlog,
                                     self._max_backlog_rows,
                                     self.retry_after_s())
            request = _Request(batch, deadline=deadline)
            self._queue.put(request)
        return request.future

    def score(self, batch: Batch, deadline: float | None = None) -> np.ndarray:
        """Blocking score: submit and wait for the result."""
        return self.submit(batch, deadline=deadline).result()

    def stats(self) -> ScorerStats:
        """Aggregate statistics across all workers.

        Counters are summed; the latency window is the union of the
        per-worker windows (percentiles are computed over the merged
        samples, so they reflect the whole pool's traffic).
        """
        per_worker = self.worker_stats()
        # Re-derive percentiles over the merged windows rather than
        # averaging per-worker percentiles (which would be meaningless).
        windows = [w.latency_window() for w in self._workers]
        merged = np.concatenate(windows) if windows else np.asarray([])
        with self._state_lock:
            retired = ScorerStats(**{
                field: getattr(self._retired, field)
                for field in ("requests", "rows", "batches", "busy_seconds")})
        stats = ScorerStats.from_window(
            requests=sum(s.requests for s in per_worker) + retired.requests,
            rows=sum(s.rows for s in per_worker) + retired.rows,
            batches=sum(s.batches for s in per_worker) + retired.batches,
            busy_seconds=(sum(s.busy_seconds for s in per_worker)
                          + retired.busy_seconds),
            latencies=merged, workers=len(self._workers))
        with self._state_lock:
            stats.backlog_rows = self._backlog_rows
            stats.shed_requests = self._shed_requests
            stats.shed_rows = self._shed_rows
            stats.worker_restarts = self._worker_restarts
            stats.averted_respawns = self._averted_respawns
            stats.expired_requests = self._expired_requests
            stats.expired_rows = self._expired_rows
            stats.lost_resolutions = self._lost_resolutions
        stats.max_backlog_rows = self._max_backlog_rows
        stats.drain_rate_rows_per_s = self.drain_rate_rows_per_s()
        return stats

    def worker_stats(self) -> list[ScorerStats]:
        """Per-worker statistics snapshots (index-aligned with workers)."""
        return [worker.snapshot() for worker in self._workers]

    def close(self) -> None:
        """Stop the workers; pending requests are completed first.

        Requests always precede the shutdown sentinels in the FIFO queue
        (``submit`` and ``close`` share a lock), so every enqueued request
        is picked up — and therefore completed — by some worker before
        that worker can see a sentinel.

        The supervisor is stopped and joined *before* the sentinels go
        out, so the worker list is stable for the joins below and a
        mid-close respawn can never resurrect a worker the sentinels
        were not counted for.
        """
        with self._submit_lock:
            if self._closed:
                return
            # Flip the flag while also holding _state_lock: a respawner
            # that already passed its top-of-loop closed check is either
            # inside the locked publish+start region (its replacement is
            # in _workers before we proceed, so it gets a sentinel and a
            # join below) or will take the lock after us and avert.  No
            # interleaving can start a thread this method never joins.
            with self._state_lock:
                self._closed = True
        self._supervisor_stop.set()
        self._supervisor.join()
        with self._submit_lock:
            for _ in self._workers:
                self._queue.put(_SHUTDOWN)
        for worker in self._workers:
            worker.thread.join()
        # Defensive: the FIFO argument above makes leftovers impossible
        # while every worker lives — but a worker that died *after* the
        # supervisor stopped leaves its share of the queue unconsumed,
        # and an unresolved future would hang its caller forever.  Fail
        # whatever remains loudly rather than silently.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                _resolve(item.future,
                         error=RuntimeError("scorer closed before request ran"))

    def __enter__(self) -> "ScorerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class BatchScorer(ScorerPool):
    """Single-worker micro-batching scorer around one score function.

    The PR 3 API, kept both for callers that own a non-thread-safe score
    closure (the lone worker serializes access to it) and as the baseline
    :class:`ScorerPool` is benchmarked against.

    Parameters
    ----------
    score_fn:
        ``Batch -> (n,) scores``; typically a model's compiled
        :meth:`~repro.models.base.RankingModel.score`.
    max_batch_rows / max_wait_ms:
        As for :class:`ScorerPool`.
    """

    def __init__(self, score_fn, max_batch_rows: int = 256,
                 max_wait_ms: float = 2.0, name: str = "scorer"):
        # Static cap: the PR 3 API promised "flush at max_batch_rows,
        # wait max_wait_ms for stragglers" — keep that contract exact.
        super().__init__(lambda: score_fn, num_workers=1,
                         max_batch_rows=max_batch_rows,
                         max_wait_ms=max_wait_ms, name=name,
                         adaptive_batch=False)
