"""Model configuration.

Defaults follow the paper's §5.1.4 parameter settings: 512x256x1 towers,
embedding dimension 16, N=10 experts, K=4 active, D=1 disagreeing,
λ1 = λ2 = 1e-3.  Experiments at reduced scale shrink the tower sizes via
:mod:`repro.experiments.common`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .base import DEFAULT_INPUT_FEATURES, GATE_FEATURE_PRESETS

__all__ = ["ModelConfig", "PAPER_CONFIG"]


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters shared by every model variant."""

    embedding_dim: int = 16
    hidden_sizes: tuple[int, ...] = (512, 256)
    num_experts: int = 10
    top_k: int = 4
    num_disagreeing: int = 1          # D in §4.4
    lambda_hsc: float = 1e-3          # λ1 in eq. (14)
    lambda_adv: float = 1e-3          # λ2 in eq. (14)
    # Optional classic load-balancing regularizer (Shazeer et al. 2017);
    # 0 disables it — the paper replaces it with HSC (§2.0.2).
    lambda_load: float = 0.0
    gate_features: tuple[str, ...] = GATE_FEATURE_PRESETS["sc"]
    gate_include_numeric: bool = False
    input_features: tuple[str, ...] = DEFAULT_INPUT_FEATURES
    noisy_gating: bool = True
    # Ablation switches (paper defaults True); see DESIGN.md §5.
    hsc_restrict_topk: bool = True
    adv_on_sigmoid: bool = True
    # MMoE only: number of task buckets.
    num_tasks: int = 10
    seed: int = 0

    def with_updates(self, **kwargs) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def __post_init__(self):
        if self.top_k > self.num_experts:
            raise ValueError("top_k cannot exceed num_experts")
        if self.num_disagreeing > self.num_experts - self.top_k:
            raise ValueError("D must be <= N - K (disagreeing experts come from the idle pool)")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")


PAPER_CONFIG = ModelConfig()
