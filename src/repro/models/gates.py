"""Gate networks: the Noisy Top-K inference gate and the HSC constraint gate.

The inference gate is eq. (5)-(7): a bias-free linear map from the gate input
embedding to one logit per expert, with Shazeer-style trainable noise for
differentiable top-K selection, followed by a top-K-masked softmax.  The
constraint gate (§4.3.2) is "identical in structure" but fed the TC embedding.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["NoisyTopKGate", "GateOutput"]


class GateOutput:
    """Bundle of gate tensors one forward pass produces."""

    __slots__ = ("clean_logits", "noisy_logits", "topk_mask", "topk_indices", "probs", "full_softmax")

    def __init__(self, clean_logits: nn.Tensor, noisy_logits: nn.Tensor,
                 topk_mask: np.ndarray, topk_indices: np.ndarray,
                 probs: nn.Tensor, full_softmax: nn.Tensor):
        self.clean_logits = clean_logits      # G^I(x) — eq. (5)
        self.noisy_logits = noisy_logits      # G^I(x) + noise (training only)
        self.topk_mask = topk_mask            # bool (b, N)
        self.topk_indices = topk_indices      # int (b, K), unsorted
        self.probs = probs                    # P(x, K) — eq. (7), masked softmax
        self.full_softmax = full_softmax      # p^I(x) — eq. (9), full support


class NoisyTopKGate(nn.Module):
    """Noisy Top-K Gating (Shazeer et al. 2017) as used in the paper.

    ``G^I(x) = x W^I`` (bias-free, eq. 5).  During training a noise term
    ``ε · softplus(x W_noise)`` with ε ~ N(0,1) is added before the top-K
    selection "to ensure differentiability of the top K operation" (§4.3.1).
    At evaluation time selection uses the clean logits.
    """

    def __init__(self, input_width: int, num_experts: int, k: int,
                 noisy: bool = True, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0 < k <= num_experts:
            raise ValueError(f"k must be in [1, {num_experts}], got {k}")
        # A seeded default, never an OS-entropy one: every initializer in
        # repro.nn.init promises "reproducible from a single seed", and an
        # unseeded fallback here silently broke that for any gate built
        # without an explicit rng (and made forked scorer processes
        # inherit *identical* noise streams look indistinguishable from
        # correctly independent ones).  Callers wanting fresh entropy must
        # say so by passing their own generator.
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_experts = num_experts
        self.k = k
        self.noisy = noisy
        self.weight = nn.Parameter(nn.init.xavier_uniform((input_width, num_experts), rng))
        self.noise_weight = nn.Parameter(np.zeros((input_width, num_experts)))
        # Shazeer et al. use softplus(x W_noise) as the noise scale with
        # W_noise = 0 at init, i.e. a constant 0.69 — larger than the initial
        # gate logits at our reduced scale, which would keep routing random
        # for many epochs.  A trainable bias initialized at -2 starts the
        # noise at softplus(-2) ≈ 0.13 instead; the model can grow it back.
        self.noise_bias = nn.Parameter(np.full((num_experts,), -2.0))
        self._rng = rng

    def reseed(self, rng: np.random.Generator) -> None:
        """Replace the noise generator.

        Multi-process serving forks/spawns workers after the model exists;
        without an explicit reseed every child would continue the parent's
        stream from the same state and draw *correlated* noise.  Each child
        calls :meth:`repro.nn.Module.reseed` with a stream derived from
        ``np.random.SeedSequence`` spawn keys, which lands here.
        """
        self._rng = rng

    def forward(self, x: nn.Tensor, k: int | None = None) -> GateOutput:
        """Compute gate values for input embeddings ``x`` of shape (b, d)."""
        k = self.k if k is None else k
        clean = x @ self.weight
        if self.noisy and self.training:
            raw_noise = x @ self.noise_weight + self.noise_bias
            # softplus(z) = log(1 + e^z), stable form.
            softplus = (1.0 + (-(raw_noise.abs())).exp()).log() + raw_noise.relu()
            # Noise lands at the gate's compute dtype so float32 graphs are
            # not silently promoted back to float64 every training batch.
            epsilon = nn.Tensor(self._rng.standard_normal(clean.shape),
                                dtype=clean.dtype)
            noisy = clean + epsilon * softplus
        else:
            noisy = clean
        mask = F.scatter_topk_mask(noisy.data, k)
        indices = _mask_to_indices(mask, k)
        probs = F.masked_softmax(noisy, mask, axis=1)
        full = F.softmax(clean, axis=1)
        return GateOutput(clean_logits=clean, noisy_logits=noisy, topk_mask=mask,
                          topk_indices=indices, probs=probs, full_softmax=full)


def _mask_to_indices(mask: np.ndarray, k: int) -> np.ndarray:
    """Convert a boolean (b, N) top-k mask to an int (b, k) index matrix."""
    rows, cols = np.nonzero(mask)
    # nonzero returns row-major order: each row contributes exactly k columns.
    return cols.reshape(-1, k)
