"""``repro.models`` — the paper's model zoo (§4, §5.1.3).

* :class:`DNNRanker` — single-tower baseline.
* :class:`MoERanker` — Noisy Top-K MoE; flags enable AdvLoss and/or HSC,
  yielding MoE / Adv-MoE / HSC-MoE / Adv & HSC-MoE.
* :class:`MMoERanker` — multi-gate MoE over category-bucket tasks.
"""

from .base import (DEFAULT_INPUT_FEATURES, GATE_FEATURE_PRESETS, FeatureEmbedder,
                   ModelOutput, RankingModel)
from .config import PAPER_CONFIG, ModelConfig
from .dnn import DNNRanker
from .extraction import DedicatedRanker, expert_utilization, extract_dedicated_model
from .factory import MODEL_NAMES, build_model
from .gates import GateOutput, NoisyTopKGate
from .mmoe import MMoERanker, assign_category_buckets
from .moe import MoERanker
from .regularizers import (adversarial_loss, hsc_loss, load_balancing_loss,
                           sample_disagreeing_experts)

__all__ = [
    "RankingModel",
    "ModelOutput",
    "FeatureEmbedder",
    "ModelConfig",
    "PAPER_CONFIG",
    "DNNRanker",
    "DedicatedRanker",
    "extract_dedicated_model",
    "expert_utilization",
    "MoERanker",
    "MMoERanker",
    "assign_category_buckets",
    "NoisyTopKGate",
    "GateOutput",
    "hsc_loss",
    "load_balancing_loss",
    "adversarial_loss",
    "sample_disagreeing_experts",
    "build_model",
    "MODEL_NAMES",
    "DEFAULT_INPUT_FEATURES",
    "GATE_FEATURE_PRESETS",
]
