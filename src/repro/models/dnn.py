"""The DNN baseline: a single MLP over the concatenated input (§5.1.3).

"The DNN and a single expert tower have the same network structure,
512 x 256 x 1, as well as embedding dimension" — so this is exactly one
expert tower applied to X with no gating.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.dataset import Batch
from ..data.schema import FeatureSpec
from ..nn.infer import PrefixMemo, SplitMLP, sigmoid_array
from .base import FeatureEmbedder, ModelOutput, RankingModel
from .config import ModelConfig

__all__ = ["DNNRanker"]


class DNNRanker(RankingModel):
    """Feed-forward baseline ranker."""

    def __init__(self, spec: FeatureSpec, config: ModelConfig | None = None):
        super().__init__()
        self.config = config or ModelConfig()
        rng = np.random.default_rng(self.config.seed)
        self.embedder = FeatureEmbedder(spec, self.config.embedding_dim,
                                        input_features=self.config.input_features, rng=rng)
        self.tower = nn.MLP(self.embedder.input_width, list(self.config.hidden_sizes), 1, rng=rng)

    def forward(self, batch: Batch) -> ModelOutput:
        x = self.embedder.model_input(batch)
        logits = self.tower(x).reshape(-1)
        return ModelOutput(logits=logits)

    def _build_scorer(self):
        """Compiled scoring: embedding gather -> compiled tower -> sigmoid."""
        tower = self.tower.compiled()

        def score(batch: Batch) -> np.ndarray:
            x = self.embedder.model_input_array(batch)
            return sigmoid_array(tower(x).reshape(-1))
        return score

    def make_split_scorer(self, prefix_memo: PrefixMemo | None = None):
        """Split-plan scoring: memoized item-side first-layer prefix.

        The item embedding blocks + numeric columns contribute a
        query-independent term to the tower's first hidden layer; that
        term is computed once per distinct item row (keyed by the raw
        item features) and reused, so repeat items cost only the
        query-side matmul plus the remaining layers.  See
        :class:`~repro.nn.infer.SplitMLP` for the weight-snapshot and
        float-rounding caveats.
        """
        embedder = self.embedder
        item_cols, query_cols = embedder.input_column_split()
        if item_cols.size == 0 or query_cols.size == 0:
            return None                 # nothing to split
        split = SplitMLP(self.tower, item_cols, query_cols)
        memo = prefix_memo if prefix_memo is not None else PrefixMemo()

        def score(batch: Batch) -> np.ndarray:
            x = embedder.model_input_array(batch)
            x_item = np.ascontiguousarray(x[:, item_cols])
            x_query = np.ascontiguousarray(x[:, query_cols])
            keys = embedder.item_row_keys(batch)
            prefix = memo.lookup(keys, lambda rows: split.prefix(x_item[rows]))
            return sigmoid_array(split(prefix, x_query).reshape(-1))
        return score

    def loss(self, batch: Batch, rng: np.random.Generator | None = None
             ) -> tuple[nn.Tensor, dict[str, float]]:
        output = self.forward(batch)
        # The fused BCE kernel casts labels to the logits dtype itself, so no
        # up-front float64 copy is needed (and float32 mode stays float32).
        ce = nn.losses.bce_with_logits(output.logits, batch.labels)
        return ce, {"ce": ce.item()}
