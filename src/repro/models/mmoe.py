"""MMoE baseline: multi-gate mixture-of-experts over category-bucket tasks.

The paper replicates MMoE (Ma et al. 2018) by "treating different groups of
major product categories as different tasks": top-categories are divided
into ``num_tasks`` buckets of roughly equal training example counts, each
bucket owning its own softmax gate over the shared experts (§5.1.4).  Every
example is routed through the gate of its bucket — the per-minibatch
subdivision of the paper is realized here with a vectorized per-row gate
selection, which is numerically identical.

Simplification vs full MMoE: experts emit scalar logits (the same towers as
the MoE models) rather than hidden representations with per-task towers.
This keeps parameter counts comparable with the MoE variants, which is the
comparison axis the paper uses (4-MMoE ≈ compute, 10-MMoE ≈ capacity).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.dataset import Batch
from ..data.schema import FeatureSpec
from ..nn import functional as F
from ..nn.infer import sigmoid_array, softmax_array
from .base import FeatureEmbedder, ModelOutput, RankingModel
from .config import ModelConfig

__all__ = ["MMoERanker", "assign_category_buckets"]


def assign_category_buckets(tc_ids: np.ndarray, num_buckets: int) -> dict[int, int]:
    """Greedily pack top-categories into ``num_buckets`` buckets of roughly
    equal example counts (the paper's task construction, §5.1.4).

    Categories are sorted by descending count and each goes to the currently
    lightest bucket (LPT scheduling), which is the standard balancing
    heuristic.  Returns a map TC id → bucket index.
    """
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    unique, counts = np.unique(np.asarray(tc_ids), return_counts=True)
    order = np.argsort(-counts)
    loads = np.zeros(num_buckets)
    assignment: dict[int, int] = {}
    for index in order:
        bucket = int(np.argmin(loads))
        assignment[int(unique[index])] = bucket
        loads[bucket] += counts[index]
    return assignment


class MMoERanker(RankingModel):
    """Multi-gate MoE with category buckets as tasks."""

    def __init__(self, spec: FeatureSpec, bucket_assignment: dict[int, int],
                 config: ModelConfig | None = None):
        super().__init__()
        self.config = config or ModelConfig()
        self.bucket_assignment = dict(bucket_assignment)
        self.num_tasks = self.config.num_tasks
        if self.bucket_assignment and max(self.bucket_assignment.values()) >= self.num_tasks:
            raise ValueError("bucket index exceeds num_tasks")
        rng = np.random.default_rng(self.config.seed)

        self.embedder = FeatureEmbedder(spec, self.config.embedding_dim,
                                        input_features=self.config.input_features, rng=rng)
        self.experts = nn.ModuleList([
            nn.MLP(self.embedder.input_width, list(self.config.hidden_sizes), 1, rng=rng)
            for _ in range(self.config.num_experts)
        ])
        # One gate per task, stored as a fused weight (d, T*N): per-example
        # task selection becomes a take_along_axis, keeping the batch whole.
        gate_width = self.embedder.gate_input_width(self.config.gate_features, False)
        self.gate_weight = nn.Parameter(
            nn.init.xavier_uniform((gate_width, self.num_tasks * self.config.num_experts), rng))
        # Dense TC -> bucket lookup.
        max_tc = max(self.bucket_assignment, default=0)
        self._bucket_of = np.zeros(max_tc + 1, dtype=np.int64)
        for tc, bucket in self.bucket_assignment.items():
            self._bucket_of[tc] = bucket

    def _buckets_for(self, batch: Batch) -> np.ndarray:
        tc_ids = batch.sparse["query_tc"]
        clipped = np.clip(tc_ids, 0, len(self._bucket_of) - 1)
        return self._bucket_of[clipped]

    def forward(self, batch: Batch) -> ModelOutput:
        x = self.embedder.model_input(batch)
        gate_in = self.embedder.gate_input(batch, self.config.gate_features, False)
        batch_size = len(batch)
        n = self.config.num_experts

        all_gate_logits = (gate_in @ self.gate_weight).reshape(batch_size, self.num_tasks, n)
        buckets = self._buckets_for(batch)
        index = np.broadcast_to(buckets.reshape(-1, 1, 1), (batch_size, 1, n))
        task_logits = F.take_along_axis(all_gate_logits, index, axis=1).reshape(batch_size, n)
        gate_probs = F.softmax(task_logits, axis=1)  # dense softmax — MMoE has no top-K

        expert_logits = nn.concatenate([expert(x) for expert in self.experts], axis=1)
        logits = (gate_probs * expert_logits).sum(axis=1)
        return ModelOutput(logits=logits, expert_logits=expert_logits,
                           gate_probs=gate_probs, gate_logits_clean=task_logits,
                           extras={"buckets": buckets})

    def loss(self, batch: Batch, rng: np.random.Generator | None = None
             ) -> tuple[nn.Tensor, dict[str, float]]:
        output = self.forward(batch)
        # The fused BCE kernel casts labels to the logits dtype itself, so no
        # up-front float64 copy is needed (and float32 mode stays float32).
        ce = nn.losses.bce_with_logits(output.logits, batch.labels)
        return ce, {"ce": ce.item()}

    def _build_scorer(self):
        """Compiled scoring: per-bucket gate selection in plain numpy +
        compiled expert towers, mirroring the forward exactly."""
        experts = [expert.compiled() for expert in self.experts]
        config = self.config

        def score(batch: Batch) -> np.ndarray:
            x = self.embedder.model_input_array(batch)
            gate_in = self.embedder.gate_input_array(batch, config.gate_features, False)
            batch_size, n = x.shape[0], config.num_experts
            all_logits = (gate_in @ self.gate_weight.data).reshape(
                batch_size, self.num_tasks, n)
            buckets = self._buckets_for(batch)
            index = np.broadcast_to(buckets.reshape(-1, 1, 1), (batch_size, 1, n))
            task_logits = np.take_along_axis(all_logits, index, axis=1).reshape(batch_size, n)
            probs = softmax_array(task_logits, axis=1)
            expert_logits = np.empty((batch_size, n), dtype=x.dtype)
            for i, plan in enumerate(experts):
                expert_logits[:, i] = plan(x).reshape(-1)
            return sigmoid_array((probs * expert_logits).sum(axis=1))
        return score
