"""The paper's two regularizers: HSC (eq. 9-11) and AdvLoss (eq. 12).

Gradient routing (eq. 15-16) is obtained *structurally*: HSC is computed from
gate outputs only, so expert weights are simply absent from its autograd
graph; AdvLoss involves expert outputs but not the gate probabilities (the
top-K/disagreeing index selection is discrete), so the gate weight gradient
of AdvLoss is identically zero.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .gates import GateOutput

__all__ = ["hsc_loss", "adversarial_loss", "sample_disagreeing_experts",
           "load_balancing_loss"]


def hsc_loss(inference_gate: GateOutput, constraint_full_softmax: nn.Tensor,
             restrict_to_topk: bool = True) -> nn.Tensor:
    """Hierarchical Soft Constraint (eq. 11), averaged over the batch.

    ``HSC = sum_{i in U_topK} (p^I_i - p^C_i)^2`` where both distributions are
    *full-support* softmaxes (eq. 9-10) but the sum runs only over the
    inference gate's top-K support.  ``restrict_to_topk=False`` gives the
    full-support ablation studied in ``benchmarks/bench_ablation.py``.
    """
    diff = inference_gate.full_softmax - constraint_full_softmax
    squared = diff ** 2
    if restrict_to_topk:
        picked = F.take_along_axis(squared, inference_gate.topk_indices, axis=1)
        return picked.sum(axis=1).mean()
    return squared.sum(axis=1).mean()


def sample_disagreeing_experts(topk_mask: np.ndarray, num_disagreeing: int,
                               rng: np.random.Generator) -> np.ndarray:
    """Sample D disagreeing expert indices per example from the idle pool.

    Guarantees ``U_D ∩ U_topK = ∅`` (§4.4) by drawing from the complement of
    the top-K set, uniformly without replacement per row (vectorized via
    random keys + argpartition).
    """
    batch, num_experts = topk_mask.shape
    k = int(topk_mask[0].sum())
    if num_disagreeing > num_experts - k:
        raise ValueError(
            f"cannot sample D={num_disagreeing} disagreeing experts from "
            f"{num_experts - k} idle experts (N={num_experts}, K={k})")
    keys = rng.random((batch, num_experts))
    keys[topk_mask] = np.inf  # never select an active expert
    return np.argpartition(keys, num_disagreeing - 1, axis=1)[:, :num_disagreeing]


def load_balancing_loss(gate_probs: nn.Tensor) -> nn.Tensor:
    """Importance-based load balancing (Shazeer et al. 2017, eq. 4 there).

    ``CV(importance)^2`` where importance_i = Σ_batch P_i: penalizes gates
    that concentrate all traffic on a few experts.  The paper "extends the
    load-balancing idea" with HSC (§2.0.2); this classic form is provided
    for the ablation benches and as an optional extra regularizer
    (``ModelConfig.lambda_load``).
    """
    importance = gate_probs.sum(axis=0)
    mean = importance.mean()
    variance = ((importance - mean) ** 2).mean()
    return variance / (mean ** 2 + 1e-10)


def adversarial_loss(expert_logits: nn.Tensor, topk_indices: np.ndarray,
                     disagreeing_indices: np.ndarray,
                     on_sigmoid: bool = True) -> nn.Tensor:
    """Adversarial regularizer (eq. 12), averaged over the batch.

    ``AdvLoss = sum_{i in U_topK, j in U_D} (σ(E_i) − σ(E_j))^2`` — the L2
    distance between active and disagreeing expert predictions, *subtracted*
    from the training loss to reward disagreement.  ``on_sigmoid=False``
    computes the distance on raw logits (ablation).
    """
    outputs = expert_logits.sigmoid() if on_sigmoid else expert_logits
    selected = F.take_along_axis(outputs, topk_indices, axis=1)        # (b, K)
    disagreeing = F.take_along_axis(outputs, disagreeing_indices, axis=1)  # (b, D)
    batch, k = selected.shape
    d = disagreeing.shape[1]
    diff = selected.reshape(batch, k, 1) - disagreeing.reshape(batch, 1, d)
    return (diff ** 2).sum(axis=(1, 2)).mean()
