"""Expert extraction and transfer: category-dedicated models from the MoE.

Implements the paper's §1/§6 aspiration: "this opens up the possibility for
subsequent extraction and tweaking of category-dedicated models from the
unified ensemble" and "it is desirable to fine-tune individual expert models
to suit evolving business requirement".

:func:`extract_dedicated_model` snapshots the experts a trained MoE's gate
selects for one sub-category, together with their gate weights, into a
standalone :class:`DedicatedRanker` — a fixed mixture of K towers that can
be served or fine-tuned on category data without the rest of the ensemble.
"""

from __future__ import annotations

import copy

import numpy as np

from .. import nn
from ..data.dataset import Batch, LTRDataset
from .base import ModelOutput, RankingModel
from .moe import MoERanker

__all__ = ["DedicatedRanker", "extract_dedicated_model", "expert_utilization"]


class DedicatedRanker(RankingModel):
    """A frozen-gate mixture of the K experts one category routes to.

    The gate weights are constants (the parent gate's probabilities for the
    category), so prediction is ``σ(Σ_k w_k E_k(X))``.  Experts and the
    embedder are deep copies — fine-tuning a dedicated model never mutates
    the parent ensemble.
    """

    def __init__(self, embedder, experts: list[nn.Module], gate_weights: np.ndarray,
                 expert_ids: list[int], sc_id: int):
        super().__init__()
        if len(experts) != gate_weights.shape[0]:
            raise ValueError("one gate weight per extracted expert required")
        if not np.isclose(gate_weights.sum(), 1.0, atol=1e-6):
            raise ValueError("gate weights must sum to 1 (a softmax slice)")
        self.embedder = embedder
        self.experts = nn.ModuleList(experts)
        self.gate_weights = np.asarray(gate_weights, dtype=np.float64)
        self.expert_ids = list(expert_ids)
        self.sc_id = sc_id

    def forward(self, batch: Batch) -> ModelOutput:
        x = self.embedder.model_input(batch)
        expert_logits = nn.concatenate([expert(x) for expert in self.experts], axis=1)
        logits = (expert_logits * nn.Tensor(self.gate_weights,
                                            dtype=expert_logits.dtype)).sum(axis=1)
        return ModelOutput(logits=logits, expert_logits=expert_logits)

    def loss(self, batch: Batch, rng: np.random.Generator | None = None
             ) -> tuple[nn.Tensor, dict[str, float]]:
        output = self.forward(batch)
        # The fused BCE kernel casts labels to the logits dtype itself, so no
        # up-front float64 copy is needed (and float32 mode stays float32).
        ce = nn.losses.bce_with_logits(output.logits, batch.labels)
        return ce, {"ce": ce.item()}

    def freeze_embedder(self) -> None:
        """Stop embedding updates during fine-tuning (tower-only transfer)."""
        for param in self.embedder.parameters():
            param.requires_grad = False

    def trainable_parameters(self):
        """Parameters still marked trainable (for optimizer construction)."""
        return (p for p in self.parameters() if p.requires_grad)


def extract_dedicated_model(model: MoERanker, sc_id: int,
                            dataset: LTRDataset) -> DedicatedRanker:
    """Extract the dedicated model for sub-category ``sc_id``.

    Uses one example of the category from ``dataset`` to read the gate's
    (noise-free) top-K selection and probabilities, then deep-copies the
    selected expert towers and the embedder.
    """
    rows = np.flatnonzero(dataset.query_sc == sc_id)
    if rows.size == 0:
        raise ValueError(f"dataset contains no example of sub-category {sc_id}")
    probe = dataset.batch(rows[:1])
    vector = model.gate_vectors(probe)[0]
    selected = np.flatnonzero(vector > 0)
    weights = vector[selected]
    weights = weights / weights.sum()
    experts = [copy.deepcopy(model.experts[int(i)]) for i in selected]
    embedder = copy.deepcopy(model.embedder)
    return DedicatedRanker(embedder=embedder, experts=experts,
                           gate_weights=weights,
                           expert_ids=[int(i) for i in selected], sc_id=int(sc_id))


def expert_utilization(model: MoERanker, dataset: LTRDataset,
                       max_examples: int = 5000,
                       seed: int = 0) -> np.ndarray:
    """Fraction of total gate mass each expert receives on a dataset.

    A diagnostic for load skew: a healthy ensemble spreads traffic, a
    collapsed one routes everything through one tower.
    """
    rng = np.random.default_rng(seed)
    rows = np.arange(len(dataset))
    if rows.size > max_examples:
        rows = rng.choice(rows, size=max_examples, replace=False)
    vectors = model.gate_vectors(dataset.batch(np.sort(rows)))
    mass = vectors.sum(axis=0)
    return mass / mass.sum()
