"""MoE ranking models: vanilla MoE, Adv-MoE, HSC-MoE, and Adv & HSC-MoE.

One class covers all four variants — the regularizers are switched on by
setting λ1 (HSC) and/or λ2 (AdvLoss) to non-zero, exactly mirroring how the
paper builds its model zoo (§5.1.3).  The combined objective is eq. (14):

    J(Θ) = mean( CE + λ1·HSC(x_sc, x_tc) − λ2·AdvLoss(X, x_sc) )

Implementation notes
--------------------
* Every expert is evaluated on every example (dense computation).  The
  paper's top-K sparsity is a *serving* optimization; at reproduction scale
  dense evaluation is faster in numpy and is anyway required by AdvLoss
  (idle experts' outputs are part of the loss) and by the Fig. 8 case study.
  The prediction itself uses only the top-K probabilities — non-selected
  experts receive exactly zero weight from the masked softmax.
* Gradient routing (eq. 15-16) holds structurally; see
  :mod:`repro.models.regularizers`.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.dataset import Batch
from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from ..nn import functional as F
from ..nn.infer import (PrefixMemo, SplitMLP, masked_softmax_array,
                        sigmoid_array)
from .base import FeatureEmbedder, ModelOutput, RankingModel
from .config import ModelConfig
from .gates import NoisyTopKGate
from .regularizers import (adversarial_loss, hsc_loss, load_balancing_loss,
                           sample_disagreeing_experts)

__all__ = ["MoERanker"]


class MoERanker(RankingModel):
    """Noisy top-K mixture-of-experts ranker with optional HSC / AdvLoss.

    Parameters
    ----------
    spec:
        Feature schema (embedding cardinalities).
    taxonomy:
        Category tree; required when ``use_hsc`` (the constraint gate needs
        TC ids, which are derived from SC ids through the hierarchy).
    config:
        Hyper-parameters; ``config.lambda_hsc`` / ``config.lambda_adv``
        only take effect when the corresponding ``use_*`` flag is set.
    use_hsc / use_adv:
        Enable the Hierarchical Soft Constraint and/or the adversarial
        regularizer.
    """

    def __init__(self, spec: FeatureSpec, taxonomy: Taxonomy | None = None,
                 config: ModelConfig | None = None,
                 use_hsc: bool = False, use_adv: bool = False):
        super().__init__()
        self.config = config or ModelConfig()
        self.use_hsc = use_hsc
        self.use_adv = use_adv
        if use_hsc and taxonomy is None:
            raise ValueError("HSC requires a taxonomy to map SC ids to TC ids")
        self.taxonomy = taxonomy
        rng = np.random.default_rng(self.config.seed)
        self._rng = np.random.default_rng(self.config.seed + 1)

        self.embedder = FeatureEmbedder(spec, self.config.embedding_dim,
                                        input_features=self.config.input_features, rng=rng)
        self.experts = nn.ModuleList([
            nn.MLP(self.embedder.input_width, list(self.config.hidden_sizes), 1, rng=rng)
            for _ in range(self.config.num_experts)
        ])
        gate_width = self.embedder.gate_input_width(
            self.config.gate_features, self.config.gate_include_numeric)
        self.inference_gate = NoisyTopKGate(gate_width, self.config.num_experts,
                                            k=self.config.top_k,
                                            noisy=self.config.noisy_gating, rng=rng)
        if use_hsc:
            # "The constraint gate and inference gate have the same structure"
            # (§4.3.2) but its input is the TC embedding.
            self.constraint_gate = NoisyTopKGate(self.config.embedding_dim,
                                                 self.config.num_experts,
                                                 k=self.config.top_k,
                                                 noisy=False, rng=rng)
        else:
            self.constraint_gate = None

    # ------------------------------------------------------------------
    def expert_outputs(self, x: nn.Tensor) -> nn.Tensor:
        """All expert logits, shape (b, N)."""
        return nn.concatenate([expert(x) for expert in self.experts], axis=1)

    def forward(self, batch: Batch) -> ModelOutput:
        x = self.embedder.model_input(batch)
        gate_in = self.embedder.gate_input(batch, self.config.gate_features,
                                           self.config.gate_include_numeric)
        gate = self.inference_gate(gate_in)
        expert_logits = self.expert_outputs(x)
        # yhat logit = sum_i P_i(x_sc, K) * E_i(X)  (eq. 8; masked softmax
        # zeroes non-selected experts, so only top-K contribute).
        logits = (gate.probs * expert_logits).sum(axis=1)
        return ModelOutput(
            logits=logits,
            expert_logits=expert_logits,
            gate_probs=gate.probs,
            gate_logits_clean=gate.clean_logits,
            topk_indices=gate.topk_indices,
            extras={"gate": gate},
        )

    def loss(self, batch: Batch, rng: np.random.Generator | None = None
             ) -> tuple[nn.Tensor, dict[str, float]]:
        rng = rng if rng is not None else self._rng
        output = self.forward(batch)
        gate = output.extras["gate"]
        # The fused BCE kernel casts labels to the logits dtype itself, so no
        # up-front float64 copy is needed (and float32 mode stays float32).
        ce = nn.losses.bce_with_logits(output.logits, batch.labels)
        total = ce
        diagnostics = {"ce": ce.item()}

        if self.use_hsc:
            tc_ids = batch.sparse["query_tc"]
            x_tc = self.embedder.embed("query_tc", tc_ids)
            constraint = self.constraint_gate(x_tc)
            hsc = hsc_loss(gate, constraint.full_softmax,
                           restrict_to_topk=self.config.hsc_restrict_topk)
            total = total + self.config.lambda_hsc * hsc
            diagnostics["hsc"] = hsc.item()

        if self.config.lambda_load > 0:
            balance = load_balancing_loss(gate.probs)
            total = total + self.config.lambda_load * balance
            diagnostics["load_balance"] = balance.item()

        if self.use_adv and self.config.num_disagreeing > 0:
            disagreeing = sample_disagreeing_experts(
                gate.topk_mask, self.config.num_disagreeing, rng)
            adv = adversarial_loss(output.expert_logits, gate.topk_indices,
                                   disagreeing, on_sigmoid=self.config.adv_on_sigmoid)
            total = total - self.config.lambda_adv * adv
            diagnostics["adv"] = adv.item()

        diagnostics["total"] = total.item()
        return total, diagnostics

    def _build_scorer(self):
        """Compiled scoring: numpy gate (clean logits, eval semantics) +
        compiled expert towers, mirroring the eval-mode forward exactly."""
        experts = [expert.compiled() for expert in self.experts]
        gate = self.inference_gate
        config = self.config

        def score(batch: Batch) -> np.ndarray:
            x = self.embedder.model_input_array(batch)
            gate_in = self.embedder.gate_input_array(
                batch, config.gate_features, config.gate_include_numeric)
            clean = gate_in @ gate.weight.data
            mask = F.scatter_topk_mask(clean, gate.k)
            probs = masked_softmax_array(clean, mask, axis=1)
            expert_logits = np.empty((x.shape[0], len(experts)), dtype=x.dtype)
            for index, plan in enumerate(experts):
                expert_logits[:, index] = plan(x).reshape(-1)
            return sigmoid_array((probs * expert_logits).sum(axis=1))
        return score

    def make_split_scorer(self, prefix_memo: PrefixMemo | None = None):
        """Split-plan scoring: per-expert memoized item-side prefixes.

        Every expert's first layer admits the same item/query column
        split, so one memo entry per distinct item row carries the
        concatenated ``(num_experts * hidden)`` prefix block; per request
        only the query-side matmuls, the remaining expert layers, and the
        (query-side) gate run.  The gate math is identical to
        ``_build_scorer`` — only the expert towers are split.
        """
        embedder = self.embedder
        item_cols, query_cols = embedder.input_column_split()
        if item_cols.size == 0 or query_cols.size == 0:
            return None
        splits = [SplitMLP(expert, item_cols, query_cols)
                  for expert in self.experts]
        width = splits[0].prefix_width
        memo = prefix_memo if prefix_memo is not None else PrefixMemo()
        gate = self.inference_gate
        config = self.config

        def score(batch: Batch) -> np.ndarray:
            x = embedder.model_input_array(batch)
            gate_in = embedder.gate_input_array(
                batch, config.gate_features, config.gate_include_numeric)
            clean = gate_in @ gate.weight.data
            mask = F.scatter_topk_mask(clean, gate.k)
            probs = masked_softmax_array(clean, mask, axis=1)
            x_item = np.ascontiguousarray(x[:, item_cols])
            x_query = np.ascontiguousarray(x[:, query_cols])
            keys = embedder.item_row_keys(batch)

            def compute(rows: np.ndarray) -> np.ndarray:
                block = np.empty((rows.size, len(splits) * width),
                                 dtype=x.dtype)
                x_rows = x_item[rows]
                for index, split in enumerate(splits):
                    block[:, index * width:(index + 1) * width] = \
                        split.prefix(x_rows)
                return block

            prefix = memo.lookup(keys, compute)
            expert_logits = np.empty((x.shape[0], len(splits)), dtype=x.dtype)
            for index, split in enumerate(splits):
                expert_logits[:, index] = split(
                    prefix[:, index * width:(index + 1) * width],
                    x_query).reshape(-1)
            return sigmoid_array((probs * expert_logits).sum(axis=1))
        return score

    # ------------------------------------------------------------------
    def gate_vectors(self, batch: Batch) -> np.ndarray:
        """Inference gate probability vectors for analysis (Fig. 6).

        Evaluated without noise (eval mode) and without graph construction.
        """
        with nn.no_grad():
            was_training = self.training
            self.eval()
            try:
                gate_in = self.embedder.gate_input(batch, self.config.gate_features,
                                                   self.config.gate_include_numeric)
                gate = self.inference_gate(gate_in)
            finally:
                self.train(was_training)
        return gate.probs.data.copy()

    def expert_scores(self, batch: Batch) -> tuple[np.ndarray, np.ndarray]:
        """Per-expert sigmoid scores and the top-K mask (Fig. 8 case study)."""
        with nn.no_grad():
            was_training = self.training
            self.eval()
            try:
                output = self.forward(batch)
            finally:
                self.train(was_training)
        sigma = sigmoid_array(output.expert_logits.data)
        return sigma, output.extras["gate"].topk_mask
