"""Build the paper's seven models by name (§5.1.3 model comparison)."""

from __future__ import annotations

import numpy as np

from ..data.dataset import LTRDataset
from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from .config import ModelConfig
from .dnn import DNNRanker
from .mmoe import MMoERanker, assign_category_buckets
from .moe import MoERanker

__all__ = ["MODEL_NAMES", "build_model"]

# The seven models of Table 2, in paper order.
MODEL_NAMES = ("dnn", "moe", "4-mmoe", "10-mmoe", "adv-moe", "hsc-moe", "adv-hsc-moe")


def build_model(name: str, spec: FeatureSpec, taxonomy: Taxonomy,
                config: ModelConfig | None = None,
                train_dataset: LTRDataset | None = None):
    """Instantiate a model by its Table 2 name.

    ``train_dataset`` is required for the MMoE variants, whose task buckets
    are built from training-set category counts (§5.1.4).
    """
    config = config or ModelConfig()
    key = name.lower()
    if key == "dnn":
        return DNNRanker(spec, config)
    if key == "moe":
        return MoERanker(spec, taxonomy, config)
    if key == "adv-moe":
        return MoERanker(spec, taxonomy, config, use_adv=True)
    if key == "hsc-moe":
        return MoERanker(spec, taxonomy, config, use_hsc=True)
    if key == "adv-hsc-moe":
        return MoERanker(spec, taxonomy, config, use_hsc=True, use_adv=True)
    if key in ("4-mmoe", "10-mmoe"):
        num_experts = 4 if key == "4-mmoe" else 10
        mmoe_config = config.with_updates(num_experts=num_experts,
                                          top_k=min(config.top_k, num_experts),
                                          num_disagreeing=0)
        if train_dataset is not None:
            tc_ids = train_dataset.query_tc
        else:
            tc_ids = np.arange(taxonomy.max_tc_id() + 1)
        buckets = assign_category_buckets(tc_ids, mmoe_config.num_tasks)
        # Ensure every TC in the taxonomy has a bucket even if unseen in training.
        for tc in taxonomy.top_categories:
            buckets.setdefault(tc.tc_id, 0)
        return MMoERanker(spec, buckets, mmoe_config)
    raise ValueError(f"unknown model {name!r}; expected one of {MODEL_NAMES}")
