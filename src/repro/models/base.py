"""Base classes shared by every ranking model.

``FeatureEmbedder`` implements the paper's input construction (eq. 2): each
sparse feature id is embedded (dimension q, 16 in the paper) and concatenated
with the normalized numeric features into one input vector X.  All models —
and all gate networks — share the same embedding tables, reflecting
"x_sc ∈ X is SC embedding vector, a part of all input vector defined in (2)".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..data.dataset import Batch
from ..data.schema import FeatureSpec
from ..nn.infer import sigmoid_array
from ..nn.layers import check_embedding_ids

__all__ = ["ModelOutput", "FeatureEmbedder", "RankingModel",
           "DEFAULT_INPUT_FEATURES", "GATE_FEATURE_PRESETS",
           "QUERY_SIDE_FEATURES"]

# Sparse features entering the model input X by default.  The query TC is
# omitted (derivable from SC — §4.3); the query hash bucket is available but
# excluded by default since it mostly adds vocabulary noise.
DEFAULT_INPUT_FEATURES = ("query_sc", "brand", "item_sc", "user_segment")

# Features that vary with the query/user rather than the candidate item.
# The split-plan precompute (see :meth:`RankingModel.make_split_scorer`)
# treats every other input column — item embeddings and the numeric block —
# as item-side and memoizes its first-layer contribution per distinct row.
# Numeric features that in fact depend on the query (e.g. a relevance
# score) stay *correct* under that treatment — the memo key covers the raw
# bytes — they just fragment the memo instead of reusing it.
QUERY_SIDE_FEATURES = frozenset({"query_sc", "query_tc", "query_bucket",
                                 "user_segment"})

# Table 5 gate-input presets.  "all" additionally appends the numeric vector.
GATE_FEATURE_PRESETS: dict[str, tuple[str, ...]] = {
    "sc": ("query_sc",),
    "tc_sc": ("query_tc", "query_sc"),
    "query_tc_sc": ("query_bucket", "query_tc", "query_sc"),
    "user_tc_sc": ("user_segment", "query_tc", "query_sc"),
    "all": ("query_sc", "query_tc", "brand", "item_sc", "user_segment", "query_bucket"),
}


@dataclass
class ModelOutput:
    """Everything a forward pass produces.

    ``logits`` drive the loss; the gate fields are populated by MoE variants
    and consumed by the regularizers and the Fig. 6 / Fig. 8 analyses.
    """

    logits: nn.Tensor                       # (b,) ensemble prediction logits
    expert_logits: nn.Tensor | None = None  # (b, N) per-expert logits
    gate_probs: nn.Tensor | None = None     # (b, N) top-K masked probabilities
    gate_logits_clean: nn.Tensor | None = None  # (b, N) noiseless gate logits
    topk_indices: np.ndarray | None = None  # (b, K)
    extras: dict = field(default_factory=dict)

    @property
    def scores(self) -> np.ndarray:
        """Predicted purchase probabilities as a plain array.

        Uses the shared stable sigmoid so the Tensor path and the compiled
        serving path produce bit-identical probabilities.
        """
        return sigmoid_array(self.logits.data)


class FeatureEmbedder(nn.Module):
    """Shared embedding tables + input concatenation (paper eq. 2)."""

    def __init__(self, spec: FeatureSpec, embedding_dim: int,
                 input_features: tuple[str, ...] = DEFAULT_INPUT_FEATURES,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.spec = spec
        self.embedding_dim = embedding_dim
        self.input_features = tuple(input_features)
        unknown = [f for f in input_features if f not in spec.sparse_names]
        if unknown:
            raise ValueError(f"unknown input features: {unknown}")
        self.tables = nn.ModuleList()
        self._table_index: dict[str, int] = {}
        # Embeddings start at std ~1/sqrt(q) so gate logits (a linear map of
        # the SC embedding, eq. 5) have a workable scale from step one.
        std = 1.0 / float(embedding_dim) ** 0.5
        for feature in spec.sparse:
            self._table_index[feature.name] = len(self.tables)
            self.tables.append(nn.Embedding(feature.cardinality, embedding_dim,
                                            rng=rng, std=std))

    @property
    def dtype(self) -> np.dtype:
        """The float dtype the embedder computes in (its tables' dtype)."""
        return self.tables[0].weight.dtype

    @property
    def input_width(self) -> int:
        """Width of X: k*q + m (eq. 2)."""
        return len(self.input_features) * self.embedding_dim + self.spec.num_numeric

    def gate_input_width(self, gate_features: tuple[str, ...], include_numeric: bool) -> int:
        """Width of a gate's input vector for a given feature preset."""
        width = len(gate_features) * self.embedding_dim
        if include_numeric:
            width += self.spec.num_numeric
        return width

    def embed(self, name: str, ids: np.ndarray) -> nn.Tensor:
        """Embed one sparse feature column."""
        return self.tables[self._table_index[name]](ids)

    def _numeric_tensor(self, batch: Batch) -> nn.Tensor:
        """Wrap the batch's numeric block at the embedder's dtype.

        ``np.asarray`` is a no-copy pass-through when the dataset was cast
        once at load time (:meth:`repro.data.LTRDataset.astype`); a
        mismatched dataset still trains correctly, just with a per-batch
        cast instead of silently upcasting the whole graph to float64.
        """
        return nn.Tensor(np.asarray(batch.numeric, dtype=self.dtype))

    def model_input(self, batch: Batch) -> nn.Tensor:
        """Build X = [embeddings | numeric] for the ranking towers."""
        parts = [self.embed(name, batch.sparse[name]) for name in self.input_features]
        parts.append(self._numeric_tensor(batch))
        return nn.concatenate(parts, axis=1)

    def gate_input(self, batch: Batch, gate_features: tuple[str, ...],
                   include_numeric: bool = False) -> nn.Tensor:
        """Build the gate input vector (x_sc in the default configuration)."""
        parts = [self.embed(name, batch.sparse[name]) for name in gate_features]
        if include_numeric:
            parts.append(self._numeric_tensor(batch))
        return parts[0] if len(parts) == 1 and not include_numeric else nn.concatenate(parts, axis=1)

    # ------------------------------------------------------------------
    # Graph-free input construction (the serving fast lane)
    # ------------------------------------------------------------------
    def embed_array(self, name: str, ids: np.ndarray) -> np.ndarray:
        """Embed one sparse feature column as a plain array (no graph).

        Shares the Tensor path's id contract (a corrupt serving request
        must fail, not wrap) via :func:`repro.nn.layers.check_embedding_ids`.
        """
        table = self.tables[self._table_index[name]]
        ids = check_embedding_ids(ids, table.num_embeddings,
                                  context=f"feature {name!r}")
        return table.weight.data[ids]

    def model_input_array(self, batch: Batch) -> np.ndarray:
        """Plain-numpy X = [embeddings | numeric]; same values as
        :meth:`model_input` with zero Tensor/graph bookkeeping."""
        parts = [self.embed_array(name, batch.sparse[name]) for name in self.input_features]
        parts.append(np.asarray(batch.numeric, dtype=self.dtype))
        return np.concatenate(parts, axis=1)

    def gate_input_array(self, batch: Batch, gate_features: tuple[str, ...],
                         include_numeric: bool = False) -> np.ndarray:
        """Plain-numpy gate input; same values as :meth:`gate_input`."""
        parts = [self.embed_array(name, batch.sparse[name]) for name in gate_features]
        if include_numeric:
            parts.append(np.asarray(batch.numeric, dtype=self.dtype))
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)

    # ------------------------------------------------------------------
    # Split-plan precompute support (see repro.nn.infer.SplitMLP)
    # ------------------------------------------------------------------
    def item_feature_names(self) -> tuple[str, ...]:
        """Input features treated as item-side by the split precompute."""
        return tuple(name for name in self.input_features
                     if name not in QUERY_SIDE_FEATURES)

    def input_column_split(self) -> tuple[np.ndarray, np.ndarray]:
        """``(item_cols, query_cols)`` index arrays into X (eq. 2 layout).

        Item columns are the embedding blocks of every non-query-side
        input feature plus the whole numeric block; query columns are the
        rest.  Together they partition ``range(input_width)`` — the
        contract :class:`~repro.nn.infer.SplitMLP` validates.
        """
        item: list[int] = []
        query: list[int] = []
        offset = 0
        for name in self.input_features:
            block = range(offset, offset + self.embedding_dim)
            (query if name in QUERY_SIDE_FEATURES else item).extend(block)
            offset += self.embedding_dim
        item.extend(range(offset, offset + self.spec.num_numeric))
        return (np.asarray(item, dtype=np.intp),
                np.asarray(query, dtype=np.intp))

    def item_row_keys(self, batch: Batch) -> list[bytes]:
        """Per-row digests of the item-side features (prefix-memo keys).

        Keys cover exactly the raw inputs feeding the item-side columns
        of :meth:`input_column_split` — the sparse ids (not their
        embeddings) and the canonicalized numeric block — so two rows
        share a key iff their memoized prefix is identical.  Floats are
        canonicalized the same way as
        :func:`repro.serving.cache.canonical_key` (float64, one NaN bit
        pattern, ``-0.0`` folded into ``+0.0``).
        """
        ids = [np.asarray(batch.sparse[name], dtype=np.int64)
               for name in self.item_feature_names()]
        id_block = np.ascontiguousarray(np.column_stack(ids)) if ids else None
        numeric = np.asarray(batch.numeric, dtype=np.float64) + 0.0
        nans = np.isnan(numeric)
        if nans.any():
            numeric[nans] = np.nan
        numeric = np.ascontiguousarray(numeric)
        if id_block is None:
            return [numeric[row].tobytes() for row in range(len(batch))]
        return [id_block[row].tobytes() + numeric[row].tobytes()
                for row in range(len(batch))]


class RankingModel(nn.Module):
    """Interface all ranking models implement."""

    def __init__(self):
        super().__init__()
        # Serializes compiled scoring (shared plan scratch buffers) and
        # guards the lazy scorer build.
        self._scorer_lock = threading.Lock()
        self._scorer = None

    def forward(self, batch: Batch) -> ModelOutput:
        raise NotImplementedError

    def loss(self, batch: Batch, rng: np.random.Generator | None = None
             ) -> tuple[nn.Tensor, dict[str, float]]:
        """Return (total loss tensor, scalar diagnostics)."""
        raise NotImplementedError

    def predict(self, batch: Batch) -> np.ndarray:
        """Purchase probabilities via the Tensor reference path (no_grad).

        This builds (and discards) no backward closures but still routes
        through :class:`~repro.nn.tensor.Tensor` ops; :meth:`score` is the
        compiled graph-free fast lane and is what evaluation and serving
        use.  ``predict`` is kept as the reference the parity tests compare
        against.
        """
        if getattr(self, "_quantized_serving", False):
            # hydrate_quantized leaves NaN placeholders where the Tensor
            # forward would read weights; fail loudly instead of scoring
            # garbage.  Quantized models serve through the compiled lane.
            raise RuntimeError(
                "model was hydrated from a quantized checkpoint; the Tensor "
                "reference path has no full-precision weights — use score()")
        with nn.no_grad():
            was_training = self.training
            self.eval()
            try:
                output = self.forward(batch)
            finally:
                self.train(was_training)
        return output.scores

    # ------------------------------------------------------------------
    # Compiled scoring (the serving fast lane)
    # ------------------------------------------------------------------
    def score(self, batch: Batch) -> np.ndarray:
        """Purchase probabilities via the compiled graph-free plan.

        The scorer is compiled lazily on first use and cached; it reads
        parameters live, so training steps and ``load_state_dict`` are
        picked up without invalidation.  Matches :meth:`predict` to float
        rounding (the parity suite pins ≤1e-12 f64 / ≤1e-6 f32).

        Calls are serialized by a per-model lock: the compiled plan's
        scratch buffers are shared state, and one model object may sit
        behind several serving routes (or be scored from caller threads
        directly), so thread safety belongs here, not in the callers.
        """
        with self._scorer_lock:
            if self._scorer is None:
                self._scorer = self._build_scorer()
            return self._scorer(batch)

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Alias for :meth:`score` (sklearn-style naming)."""
        return self.score(batch)

    def make_scorer(self):
        """A fresh compiled scoring closure for one caller's exclusive use.

        Unlike :meth:`score` (one cached plan per model, serialized by a
        lock), every call compiles an independent plan over the same live
        parameters — so a :class:`~repro.serving.ScorerPool` can hand one
        to each worker and score this model from several threads at once.
        The base ``_build_scorer`` fallback returns the bound
        :meth:`predict`, which toggles shared module state (train/eval)
        and is therefore handed out lock-serialized instead.
        """
        scorer = self._build_scorer()
        if getattr(scorer, "__self__", None) is self:
            lock = self._scorer_lock

            def serialized(batch: Batch) -> np.ndarray:
                with lock:
                    return scorer(batch)

            return serialized
        return scorer

    def make_split_scorer(self, prefix_memo=None):
        """A split-plan scoring closure, or ``None`` when unsupported.

        Models whose towers admit the first-layer column split (see
        :class:`~repro.nn.infer.SplitMLP`) override this: the item-side
        contribution to the first hidden layer is memoized per distinct
        item row (``prefix_memo``, a
        :class:`~repro.nn.infer.PrefixMemo`; pass one instance to every
        worker's closure so the pool shares the memo) and only the
        query-side columns' matmul plus the rest of the tower run per
        request.  Split scores match :meth:`score` to float rounding,
        not bit-for-bit (the first matmul's summation order changes).

        The base implementation returns ``None`` — callers fall back to
        :meth:`make_scorer`.
        """
        del prefix_memo
        return None

    def _build_scorer(self):
        """Build the compiled scoring closure.

        Subclasses compile their towers/gates into plain-numpy plans; the
        base fallback is the Tensor reference path, so custom models get a
        working (if slower) ``score`` for free.  The closure should return
        a caller-owned array — not a compiled plan's scratch buffer (the
        in-repo scorers all end with an allocating sigmoid/softmax).
        """
        return self.predict
