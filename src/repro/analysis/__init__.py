"""``repro.analysis`` — t-SNE, gate clustering (Fig. 6), case study (Fig. 8)."""

from .case_study import CaseStudy, CaseStudyItem, pick_case_session, run_case_study
from .gates import GateAnalysis, analyze_gate_clustering, collect_gate_vectors
from .tsne import TSNEConfig, conditional_probabilities, tsne

__all__ = [
    "tsne",
    "TSNEConfig",
    "conditional_probabilities",
    "GateAnalysis",
    "collect_gate_vectors",
    "analyze_gate_clustering",
    "CaseStudy",
    "CaseStudyItem",
    "pick_case_session",
    "run_case_study",
]
