"""Gate-vector analysis for Fig. 6.

Collects inference-gate probability vectors on evaluation examples, embeds
them with t-SNE, labels every point with its query's semantic category group
(Table 4), and quantifies cluster quality with silhouette / intra-inter
statistics so the figure's visual claim becomes a number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import LTRDataset
from ..metrics.clustering import intra_inter_ratio, silhouette_score
from ..models.moe import MoERanker
from .tsne import TSNEConfig, tsne

__all__ = ["GateAnalysis", "collect_gate_vectors", "analyze_gate_clustering"]


@dataclass
class GateAnalysis:
    """Result bundle for one model's Fig. 6 panel."""

    model_name: str
    gate_vectors: np.ndarray       # (n, N) gate probabilities
    embedding: np.ndarray | None   # (n, 2) t-SNE points (None if skipped)
    group_labels: np.ndarray       # (n,) semantic group index
    group_names: list[str]
    silhouette_gate: float         # cluster quality in gate space
    silhouette_embedding: float | None  # cluster quality in t-SNE space
    intra_inter: float             # intra/inter distance ratio in gate space


def collect_gate_vectors(model: MoERanker, dataset: LTRDataset,
                         max_examples: int = 1000, seed: int = 0,
                         one_per_sc: bool = False) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Sample examples and return (gate vectors, group labels, group names).

    ``one_per_sc`` collapses to one representative example per sub-category
    (gate input depends only on the SC id, so per-SC vectors are identical
    up to noise — this yields the cleanest Fig. 6 points).
    """
    rng = np.random.default_rng(seed)
    taxonomy = dataset.taxonomy
    if one_per_sc:
        _, first_rows = np.unique(dataset.query_sc, return_index=True)
        rows = first_rows
    else:
        rows = rng.choice(len(dataset), size=min(max_examples, len(dataset)), replace=False)
    batch = dataset.batch(np.sort(rows))
    vectors = model.gate_vectors(batch)

    group_names = sorted({tc.semantic_group for tc in taxonomy.top_categories})
    group_index = {name: i for i, name in enumerate(group_names)}
    tc_ids = batch.sparse["query_tc"]
    labels = np.array([group_index[taxonomy.semantic_group_of(int(t))] for t in tc_ids])
    return vectors, labels, group_names


def analyze_gate_clustering(model: MoERanker, dataset: LTRDataset,
                            model_name: str = "moe", max_examples: int = 600,
                            run_tsne: bool = True, seed: int = 0,
                            tsne_config: TSNEConfig | None = None) -> GateAnalysis:
    """Full Fig. 6 pipeline for one model."""
    vectors, labels, names = collect_gate_vectors(model, dataset,
                                                  max_examples=max_examples, seed=seed)
    embedding = None
    silhouette_embedded = None
    if run_tsne:
        config = tsne_config or TSNEConfig(seed=seed, n_iter=350)
        embedding = tsne(vectors, config)
        if np.unique(labels).size >= 2:
            silhouette_embedded = silhouette_score(embedding, labels)
    return GateAnalysis(
        model_name=model_name,
        gate_vectors=vectors,
        embedding=embedding,
        group_labels=labels,
        group_names=names,
        silhouette_gate=silhouette_score(vectors, labels),
        silhouette_embedding=silhouette_embedded,
        intra_inter=intra_inter_ratio(vectors, labels),
    )
