"""Exact t-SNE (van der Maaten & Hinton 2008) in pure numpy.

Used to reproduce Fig. 6: 2-D visualization of inference-gate probability
vectors, colored by semantic category group.  sklearn is not available
offline, so this implements the exact O(n^2) algorithm: perplexity-calibrated
Gaussian affinities (binary search over precision), symmetrization, early
exaggeration, and momentum gradient descent on the KL divergence with a
Student-t low-dimensional kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TSNEConfig", "tsne", "conditional_probabilities"]

_EPS = 1e-12


@dataclass
class TSNEConfig:
    """t-SNE hyper-parameters (defaults follow the original paper)."""

    n_components: int = 2
    perplexity: float = 30.0
    learning_rate: float = 200.0
    n_iter: int = 500
    early_exaggeration: float = 12.0
    exaggeration_iters: int = 100
    initial_momentum: float = 0.5
    final_momentum: float = 0.8
    momentum_switch_iter: int = 250
    min_gain: float = 0.01
    seed: int = 0

    def __post_init__(self):
        if self.perplexity <= 1:
            raise ValueError("perplexity must exceed 1")
        if self.n_iter < self.exaggeration_iters:
            raise ValueError("n_iter must cover the exaggeration phase")


def _squared_distances(x: np.ndarray) -> np.ndarray:
    squared = (x ** 2).sum(axis=1)
    d2 = squared[:, None] + squared[None, :] - 2.0 * x @ x.T
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return d2


def _row_affinities(distances_row: np.ndarray, target_entropy: float,
                    tol: float = 1e-5, max_iter: int = 50) -> np.ndarray:
    """Binary-search the Gaussian precision matching the target entropy."""
    beta_low, beta_high = -np.inf, np.inf
    beta = 1.0
    probs = np.zeros_like(distances_row)
    for _ in range(max_iter):
        logits = -distances_row * beta
        logits -= logits.max()
        probs = np.exp(logits)
        total = probs.sum()
        if total <= 0:
            probs = np.full_like(distances_row, 1.0 / len(distances_row))
            break
        probs /= total
        entropy = -np.sum(probs * np.log(probs + _EPS))
        diff = entropy - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:
            beta_low = beta
            beta = beta * 2.0 if beta_high == np.inf else 0.5 * (beta + beta_high)
        else:
            beta_high = beta
            beta = beta * 0.5 if beta_low == -np.inf else 0.5 * (beta + beta_low)
    return probs


def conditional_probabilities(x: np.ndarray, perplexity: float) -> np.ndarray:
    """Symmetrized joint affinities P from high-dimensional points."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n < 4:
        raise ValueError("t-SNE needs at least 4 points")
    effective_perplexity = min(perplexity, (n - 1) / 3.0)
    target_entropy = np.log(effective_perplexity)
    d2 = _squared_distances(x)
    conditional = np.zeros((n, n))
    for i in range(n):
        row = np.delete(d2[i], i)
        probs = _row_affinities(row, target_entropy)
        conditional[i, np.arange(n) != i] = probs
    joint = (conditional + conditional.T) / (2.0 * n)
    return np.maximum(joint, _EPS)


def tsne(x: np.ndarray, config: TSNEConfig | None = None) -> np.ndarray:
    """Embed points into ``config.n_components`` dimensions.

    Returns an (n, n_components) array.  Deterministic given ``config.seed``.
    """
    config = config or TSNEConfig()
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    rng = np.random.default_rng(config.seed)

    p = conditional_probabilities(x, config.perplexity)
    p_effective = p * config.early_exaggeration

    y = rng.normal(0.0, 1e-4, size=(n, config.n_components))
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)

    for iteration in range(config.n_iter):
        if iteration == config.exaggeration_iters:
            p_effective = p
        momentum = (config.initial_momentum if iteration < config.momentum_switch_iter
                    else config.final_momentum)

        d2 = _squared_distances(y)
        student = 1.0 / (1.0 + d2)
        np.fill_diagonal(student, 0.0)
        q = np.maximum(student / max(student.sum(), _EPS), _EPS)

        # KL gradient: 4 * sum_j (p_ij - q_ij) * (y_i - y_j) * student_ij
        pq = (p_effective - q) * student
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

        # Adaptive per-coordinate gains (standard t-SNE trick).
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        np.maximum(gains, config.min_gain, out=gains)

        velocity = momentum * velocity - config.learning_rate * gains * grad
        y = y + velocity
        y = y - y.mean(axis=0, keepdims=True)
    return y
