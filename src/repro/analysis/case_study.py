"""Case study (paper Table 7 / Fig. 8): per-expert scores for one session.

Picks a session with one purchased and several non-purchased items, and for
each model reports every expert's sigmoid score, which experts the gate
selected, and the final ensemble prediction — the data behind Fig. 8's bar
charts and Table 7's score columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import LTRDataset
from ..models.moe import MoERanker

__all__ = ["CaseStudyItem", "CaseStudy", "pick_case_session", "run_case_study"]


@dataclass
class CaseStudyItem:
    """One item in the case-study session."""

    label: int
    expert_scores: np.ndarray    # (N,) sigmoid outputs of every expert
    selected: np.ndarray         # (N,) bool mask of gate-selected experts
    prediction: float            # final ensemble purchase probability


@dataclass
class CaseStudy:
    """Per-model expert breakdown of one session."""

    model_name: str
    session_id: int
    items: list[CaseStudyItem]

    def prediction_ranks_positive_first(self) -> bool:
        """True when the purchased item receives the highest model score."""
        best = max(range(len(self.items)), key=lambda i: self.items[i].prediction)
        return self.items[best].label == 1


def pick_case_session(dataset: LTRDataset, num_negatives: int = 2,
                      seed: int = 0) -> np.ndarray:
    """Row indices of a session with 1 positive and ``num_negatives`` negatives.

    Mirrors the paper's example (one purchased necklace + two non-purchased).
    """
    rng = np.random.default_rng(seed)
    candidates = dataset.sessions_with_label_mix()
    rng.shuffle(candidates)
    for session in candidates:
        rows = np.flatnonzero(dataset.session_ids == session)
        labels = dataset.labels[rows]
        if labels.sum() == 1 and (labels == 0).sum() >= num_negatives:
            positive = rows[labels == 1]
            negatives = rows[labels == 0][:num_negatives]
            return np.concatenate([positive, negatives])
    raise ValueError("no suitable session found")


def run_case_study(model: MoERanker, dataset: LTRDataset, rows: np.ndarray,
                   model_name: str = "moe") -> CaseStudy:
    """Expert-level breakdown of the given rows under one model."""
    batch = dataset.batch(rows)
    scores, topk_mask = model.expert_scores(batch)
    predictions = model.predict(batch)
    items = [
        CaseStudyItem(
            label=int(batch.labels[i]),
            expert_scores=scores[i],
            selected=topk_mask[i],
            prediction=float(predictions[i]),
        )
        for i in range(len(batch))
    ]
    session = int(dataset.session_ids[rows[0]])
    return CaseStudy(model_name=model_name, session_id=session, items=items)
