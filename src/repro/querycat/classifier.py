"""Query → category classifier (paper §4.1).

"A bidirectional GRU model is then trained with a softmax output layer to
predict the most likely product category a given input query belongs to.
Once the model predicts the sub-categories for a given query, the
top-categories are determined automatically via the category hierarchy."

The human annotation step is replaced by construction: the synthetic query
generator knows each query's true sub-category (DESIGN.md §2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..data.sessions import QueryTable
from ..hierarchy import Taxonomy
from ..nn.infer import softmax_array

__all__ = ["QueryCategoryClassifier", "QueryClassifierConfig", "train_classifier",
           "ClassifierResult"]


@dataclass
class QueryClassifierConfig:
    """Hyper-parameters for the BiGRU query classifier."""

    embedding_dim: int = 16
    hidden_size: int = 24
    learning_rate: float = 5e-3
    epochs: int = 4
    batch_size: int = 128
    seed: int = 0
    # Group training batches by sequence length (and trim each batch to its
    # own longest query) so the fused GRU scan does less masked tail work.
    # Batch *order* is still shuffled every epoch.
    bucket_by_length: bool = True


@dataclass
class ClassifierResult:
    """Training outcome."""

    sc_accuracy: float
    tc_accuracy: float
    history: list[float]


class QueryCategoryClassifier(nn.Module):
    """Token embedding → BiGRU → linear softmax over sub-categories.

    The encoder runs on the fused recurrent fast path
    (:func:`repro.nn.functional.gru_sequence`): the token-embedding
    projection for all timesteps is one matmul per direction, each step is
    a single graph node, and length masking happens in-kernel.  Under
    ``nn.set_default_dtype(np.float32)`` the whole pipeline — embeddings,
    recurrent states, masks, head, loss — stays float32 end to end.
    """

    def __init__(self, vocab_size: int, num_sub_categories: int,
                 config: QueryClassifierConfig | None = None):
        super().__init__()
        self.config = config or QueryClassifierConfig()
        rng = np.random.default_rng(self.config.seed)
        self.embedding = nn.Embedding(vocab_size, self.config.embedding_dim, rng=rng)
        self.encoder = nn.BiGRU(self.config.embedding_dim, self.config.hidden_size, rng=rng)
        self.head = nn.Linear(self.encoder.output_size, num_sub_categories, rng=rng)
        # Serializes compiled inference (shared plan scratch buffers) and
        # guards the lazy plan build; held until the result is consumed.
        self._infer_lock = threading.Lock()
        self._infer_plan = None

    def forward(self, tokens: np.ndarray, lengths: np.ndarray) -> nn.Tensor:
        """Return (batch, num_sc) logits for padded token id sequences."""
        tokens = np.asarray(tokens, dtype=np.int64)
        batch, max_len = tokens.shape
        embedded = self.embedding(tokens.reshape(-1)).reshape(batch, max_len,
                                                              self.config.embedding_dim)
        encoded = self.encoder(embedded, lengths=np.asarray(lengths))
        return self.head(encoded)

    def predict_proba(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """(batch, num_sc) class probabilities via the compiled plan.

        Scoring runs graph-free: embedding gather, the BiGRU scan, and the
        linear head are plain-numpy closures compiled once on first use
        (reading weights live, so post-training calls need no recompile).
        """
        with self._infer_lock:
            return softmax_array(self._logits(tokens, lengths), axis=1)

    def predict_sc(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Most likely sub-category id per query (compiled scoring path).

        Argmaxes the raw head logits — softmax is monotone per row, so the
        serving hot path skips it entirely.
        """
        with self._infer_lock:
            return self._logits(tokens, lengths).argmax(axis=1)

    def _logits(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Head logits via the compiled closures (call under _infer_lock).

        Composes the registered compilers (one per submodule) so the
        forward math lives in repro.nn.infer alone — including the
        out-of-range id check the Tensor path performs.  The returned
        array is plan-owned scratch; consume it before releasing the lock.
        """
        if self._infer_plan is None:
            embedding = self.embedding.compiled()
            encoder = self.encoder.compiled()
            head = self.head.compiled()

            def plan(tokens, lengths):
                embedded = embedding(np.asarray(tokens, dtype=np.int64))
                encoded = encoder(embedded, lengths=np.asarray(lengths))
                return head(encoded)
            self._infer_plan = plan
        return self._infer_plan(tokens, lengths)

    def predict_tc(self, tokens: np.ndarray, lengths: np.ndarray,
                   taxonomy: Taxonomy) -> np.ndarray:
        """Top-category via the hierarchy, as in §4.1."""
        sc = self.predict_sc(tokens, lengths)
        return taxonomy.parents_of(sc)


def _epoch_batches(train_rows: np.ndarray, lengths: np.ndarray,
                   config: QueryClassifierConfig, rng: np.random.Generator):
    """Yield one epoch's minibatch row arrays.

    With ``bucket_by_length`` the (already shuffled) rows are stably sorted
    by query length, sliced into contiguous batches — so each batch holds
    queries of (nearly) one length — and the batch order is reshuffled.
    Equal-length queries keep their shuffled relative order, so batch
    composition still varies epoch to epoch.  Without bucketing, plain
    contiguous slices of the shuffled rows are yielded (the original loop).
    """
    if not config.bucket_by_length:
        for start in range(0, len(train_rows), config.batch_size):
            yield train_rows[start:start + config.batch_size]
        return
    by_length = train_rows[np.argsort(lengths[train_rows], kind="stable")]
    starts = np.arange(0, len(by_length), config.batch_size)
    for start in rng.permutation(starts):
        yield by_length[start:start + config.batch_size]


def train_classifier(model: QueryCategoryClassifier, queries: QueryTable,
                     taxonomy: Taxonomy, test_fraction: float = 0.2
                     ) -> ClassifierResult:
    """Train on the query table and report SC / TC accuracies on held-out
    queries (the paper reports that TC follows automatically from SC)."""
    config = model.config
    rng = np.random.default_rng(config.seed)
    n = queries.num_queries
    order = rng.permutation(n)
    cut = max(1, int(round(n * test_fraction)))
    test_rows, train_rows = order[:cut], order[cut:]

    # Cast the query table once at load time: int64 token/length/label
    # arrays mean every minibatch slice below is a pure gather, with no
    # per-batch dtype coercion inside the hot loop.
    tokens = np.ascontiguousarray(queries.tokens, dtype=np.int64)
    lengths = np.ascontiguousarray(queries.lengths, dtype=np.int64)
    sc_ids = np.ascontiguousarray(queries.sc_ids, dtype=np.int64)

    optimizer = nn.optim.AdamW(model.parameters(), lr=config.learning_rate,
                               weight_decay=1e-4)
    history: list[float] = []
    for _ in range(config.epochs):
        rng.shuffle(train_rows)
        losses = []
        for rows in _epoch_batches(train_rows, lengths, config, rng):
            batch_tokens = tokens[rows]
            batch_lengths = lengths[rows]
            if config.bucket_by_length:
                # Trim the padded tail: within a length-homogeneous batch
                # the max valid length is (near) the bucket length, so the
                # GRU scan runs fewer timesteps and skips most masks.
                batch_tokens = batch_tokens[:, :int(batch_lengths.max())]
            optimizer.zero_grad()
            logits = model(batch_tokens, batch_lengths)
            loss = nn.losses.cross_entropy(logits, sc_ids[rows])
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))

    predicted_sc = model.predict_sc(tokens[test_rows], lengths[test_rows])
    sc_accuracy = float((predicted_sc == queries.sc_ids[test_rows]).mean())
    predicted_tc = taxonomy.parents_of(predicted_sc)
    tc_accuracy = float((predicted_tc == queries.tc_ids[test_rows]).mean())
    return ClassifierResult(sc_accuracy=sc_accuracy, tc_accuracy=tc_accuracy,
                            history=history)
