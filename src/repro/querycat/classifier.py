"""Query → category classifier (paper §4.1).

"A bidirectional GRU model is then trained with a softmax output layer to
predict the most likely product category a given input query belongs to.
Once the model predicts the sub-categories for a given query, the
top-categories are determined automatically via the category hierarchy."

The human annotation step is replaced by construction: the synthetic query
generator knows each query's true sub-category (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..data.sessions import QueryTable
from ..hierarchy import Taxonomy

__all__ = ["QueryCategoryClassifier", "QueryClassifierConfig", "train_classifier",
           "ClassifierResult"]


@dataclass
class QueryClassifierConfig:
    """Hyper-parameters for the BiGRU query classifier."""

    embedding_dim: int = 16
    hidden_size: int = 24
    learning_rate: float = 5e-3
    epochs: int = 4
    batch_size: int = 128
    seed: int = 0


@dataclass
class ClassifierResult:
    """Training outcome."""

    sc_accuracy: float
    tc_accuracy: float
    history: list[float]


class QueryCategoryClassifier(nn.Module):
    """Token embedding → BiGRU → linear softmax over sub-categories.

    The encoder runs on the fused recurrent fast path
    (:func:`repro.nn.functional.gru_sequence`): the token-embedding
    projection for all timesteps is one matmul per direction, each step is
    a single graph node, and length masking happens in-kernel.  Under
    ``nn.set_default_dtype(np.float32)`` the whole pipeline — embeddings,
    recurrent states, masks, head, loss — stays float32 end to end.
    """

    def __init__(self, vocab_size: int, num_sub_categories: int,
                 config: QueryClassifierConfig | None = None):
        super().__init__()
        self.config = config or QueryClassifierConfig()
        rng = np.random.default_rng(self.config.seed)
        self.embedding = nn.Embedding(vocab_size, self.config.embedding_dim, rng=rng)
        self.encoder = nn.BiGRU(self.config.embedding_dim, self.config.hidden_size, rng=rng)
        self.head = nn.Linear(self.encoder.output_size, num_sub_categories, rng=rng)

    def forward(self, tokens: np.ndarray, lengths: np.ndarray) -> nn.Tensor:
        """Return (batch, num_sc) logits for padded token id sequences."""
        tokens = np.asarray(tokens, dtype=np.int64)
        batch, max_len = tokens.shape
        embedded = self.embedding(tokens.reshape(-1)).reshape(batch, max_len,
                                                              self.config.embedding_dim)
        encoded = self.encoder(embedded, lengths=np.asarray(lengths))
        return self.head(encoded)

    def predict_sc(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Most likely sub-category id per query."""
        with nn.no_grad():
            logits = self.forward(tokens, lengths)
        return logits.data.argmax(axis=1)

    def predict_tc(self, tokens: np.ndarray, lengths: np.ndarray,
                   taxonomy: Taxonomy) -> np.ndarray:
        """Top-category via the hierarchy, as in §4.1."""
        sc = self.predict_sc(tokens, lengths)
        return taxonomy.parents_of(sc)


def train_classifier(model: QueryCategoryClassifier, queries: QueryTable,
                     taxonomy: Taxonomy, test_fraction: float = 0.2
                     ) -> ClassifierResult:
    """Train on the query table and report SC / TC accuracies on held-out
    queries (the paper reports that TC follows automatically from SC)."""
    config = model.config
    rng = np.random.default_rng(config.seed)
    n = queries.num_queries
    order = rng.permutation(n)
    cut = max(1, int(round(n * test_fraction)))
    test_rows, train_rows = order[:cut], order[cut:]

    # Cast the query table once at load time: int64 token/length/label
    # arrays mean every minibatch slice below is a pure gather, with no
    # per-batch dtype coercion inside the hot loop.
    tokens = np.ascontiguousarray(queries.tokens, dtype=np.int64)
    lengths = np.ascontiguousarray(queries.lengths, dtype=np.int64)
    sc_ids = np.ascontiguousarray(queries.sc_ids, dtype=np.int64)

    optimizer = nn.optim.AdamW(model.parameters(), lr=config.learning_rate,
                               weight_decay=1e-4)
    history: list[float] = []
    for _ in range(config.epochs):
        rng.shuffle(train_rows)
        losses = []
        for start in range(0, len(train_rows), config.batch_size):
            rows = train_rows[start:start + config.batch_size]
            optimizer.zero_grad()
            logits = model(tokens[rows], lengths[rows])
            loss = nn.losses.cross_entropy(logits, sc_ids[rows])
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))

    predicted_sc = model.predict_sc(tokens[test_rows], lengths[test_rows])
    sc_accuracy = float((predicted_sc == queries.sc_ids[test_rows]).mean())
    predicted_tc = taxonomy.parents_of(predicted_sc)
    tc_accuracy = float((predicted_tc == queries.tc_ids[test_rows]).mean())
    return ClassifierResult(sc_accuracy=sc_accuracy, tc_accuracy=tc_accuracy,
                            history=history)
