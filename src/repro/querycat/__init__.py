"""``repro.querycat`` — BiGRU query→category classifier (paper §4.1)."""

from .classifier import (ClassifierResult, QueryCategoryClassifier,
                         QueryClassifierConfig, train_classifier)

__all__ = [
    "QueryCategoryClassifier",
    "QueryClassifierConfig",
    "ClassifierResult",
    "train_classifier",
]
