"""Model checkpointing: save/load parameters + config as .npz / JSON.

The paper's conclusions motivate "extraction and tweaking of
category-dedicated models from the unified ensemble" — which requires being
able to persist and reload trained models.  Checkpoints store the flat
parameter state dict (``numpy.savez``) plus a JSON sidecar with the model
name and :class:`~repro.models.config.ModelConfig` fields, so
:func:`load_model` can rebuild the exact architecture.

Checkpoints are written **atomically** (temp file in the same directory,
then :func:`os.replace`) so a crash mid-write can never leave a
half-written file under the real name — a hot-reloading server polling the
directory sees either the old bytes or the new bytes, never a torn mix.
The sidecar additionally records a SHA-256 **checksum** of the weights
file; :func:`load_checkpoint` verifies it and raises
:class:`CheckpointCorrupted` on mismatch, which is what lets
``ModelRegistry.reload_from_directory`` quarantine a corrupt checkpoint
instead of serving garbage weights.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from ..models import ModelConfig, build_model
from ..models.base import RankingModel
from ..nn.quantize import (QuantizedWeight, hydrate_quantized,
                           quantizable_weights, quantize_module)

__all__ = ["CheckpointCorrupted", "atomic_write_bytes", "atomic_write_text",
           "checksum_file", "save_checkpoint", "load_checkpoint",
           "load_quantized_checkpoint", "build_model_from_meta",
           "load_model", "load_model_quantized"]

_FORMAT_VERSION = 1

# Checksum-manifest entry -> the artifact suffix it covers.  Every sidecar
# a checkpoint writes must appear here so load-time verification covers the
# complete artifact set, not just the weights archive.
_ARTIFACT_SUFFIXES = {"weights": ".npz", "quantized": ".quant.npz"}


class CheckpointCorrupted(ValueError):
    """A checkpoint's bytes do not match its declared checksum (or cannot
    be parsed at all): a torn write, bit rot, or a concurrent overwrite.
    Callers that hot-reload should quarantine the checkpoint and keep
    serving the last good version rather than let this propagate."""

    def __init__(self, path, reason: str):
        super().__init__(f"corrupt checkpoint {path}: {reason}")
        self.path = Path(path)
        self.reason = reason


# ----------------------------------------------------------------------
# Atomic writes + checksums
# ----------------------------------------------------------------------
def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (same-directory temp file +
    :func:`os.replace`): readers never observe a partial file, and a crash
    mid-write leaves the previous contents intact."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomic counterpart of ``Path.write_text`` (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def checksum_file(path: str | Path) -> str:
    """SHA-256 of a file's bytes as ``"sha256:<hex>"`` (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return f"sha256:{digest.hexdigest()}"


def _checksum_bytes(data: bytes) -> str:
    return f"sha256:{hashlib.sha256(data).hexdigest()}"


def save_checkpoint(model: RankingModel, path: str | Path,
                    model_name: str, extra: dict | None = None,
                    quantize: bool = False,
                    calibration_batch=None) -> Path:
    """Persist a model to ``<path>.npz`` + ``<path>.json``.

    Returns the weights path.  ``extra`` (JSON-serializable) is stored in
    the sidecar, e.g. training metrics.  Both files are written atomically
    and the sidecar carries a SHA-256 checksum of **every** artifact (see
    the module docstring); the artifacts land before the sidecar
    referencing them, so a crash between the writes leaves a
    stale-but-consistent set.

    With ``quantize=True`` a third artifact ``<path>.quant.npz`` is
    written: per-output-channel symmetric int8 tensors + float32 scales
    for every eligible Linear weight (see :mod:`repro.nn.quantize`) and
    float32 passthroughs for the rest, enough to serve without the
    full-precision archive resident.  ``calibration_batch`` (a held-out
    :class:`~repro.data.dataset.Batch`) is then scored through both the
    f32 and the quantized compiled plans and the achieved max score delta
    is recorded in the sidecar's ``quantization.calibration`` block — the
    number the serving gate pins against.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    weights_path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".json")

    state = model.state_dict()
    # Serialize the archive in memory so the checksum covers exactly the
    # bytes that hit disk, then write them in one atomic replace.
    buffer = io.BytesIO()
    np.savez(buffer, **state)
    weights_bytes = buffer.getvalue()
    atomic_write_bytes(weights_path, weights_bytes)
    checksum = {"weights": _checksum_bytes(weights_bytes)}

    quantization = None
    if quantize:
        quantized = quantize_module(model)
        if not quantized:
            raise ValueError("model has no quantizable Linear weights")
        arrays: dict[str, np.ndarray] = {}
        for name, array in state.items():
            if name in quantized:
                arrays[f"q:{name}"] = quantized[name].q
                arrays[f"scale:{name}"] = quantized[name].scales
            else:
                arrays[f"f:{name}"] = array
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        quant_bytes = buffer.getvalue()
        atomic_write_bytes(path.with_suffix(".quant.npz"), quant_bytes)
        checksum["quantized"] = _checksum_bytes(quant_bytes)
        quantization = {
            "scheme": "per-channel-symmetric-int8",
            "params": sorted(quantized),
            "nbytes": int(sum(qw.nbytes for qw in quantized.values())),
        }
        if calibration_batch is not None:
            quantization["calibration"] = _calibrate_quantized(
                model, quantized, calibration_batch)

    config = getattr(model, "config", None)
    if not isinstance(config, ModelConfig):
        raise TypeError("model has no ModelConfig; cannot serialize architecture")
    dtypes = {str(param.dtype) for param in model.parameters()}
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_name": model_name,
        "config": dataclasses.asdict(config),
        # Parameter dtype (recorded when uniform) so a float32-served model
        # reloads as float32 regardless of the ambient default dtype.
        "dtype": dtypes.pop() if len(dtypes) == 1 else None,
        "extra": extra or {},
        "checksum": checksum,
    }
    if quantization is not None:
        meta["quantization"] = quantization
    # MMoE's task routing lives outside the parameter arrays; persist it so
    # the rebuilt model routes examples identically.
    buckets = getattr(model, "bucket_assignment", None)
    if buckets is not None:
        meta["bucket_assignment"] = {str(k): int(v) for k, v in buckets.items()}
    atomic_write_text(meta_path,
                      json.dumps(meta, indent=2, default=_json_default))
    return weights_path


def _calibrate_quantized(model: RankingModel,
                         quantized: dict[str, QuantizedWeight],
                         batch) -> dict:
    """Measure the quantized plans' score error on a held-out batch.

    Scores the batch through a fresh f32 compiled plan, then transiently
    attaches the quantized tensors (the compilers prefer them; the f32
    weights stay resident and untouched) and scores through a fresh
    quantized plan.  The attachment is removed before returning, so plans
    built afterwards are full-precision again.
    """
    reference = np.asarray(model.make_scorer()(batch), dtype=np.float64)
    linears = quantizable_weights(model)
    try:
        for name, qw in quantized.items():
            linears[name].quantized = qw
        scores = np.asarray(model.make_scorer()(batch), dtype=np.float64)
    finally:
        for name in quantized:
            if hasattr(linears[name], "quantized"):
                del linears[name].quantized
    delta = np.abs(scores - reference)
    return {"rows": int(len(reference)),
            "max_abs_score_delta": float(delta.max()) if delta.size else 0.0,
            "mean_abs_score_delta": float(delta.mean()) if delta.size else 0.0}


def _verify_artifacts(path: Path, meta: dict) -> None:
    """Verify every artifact the sidecar's checksum manifest declares.

    Historically only the weights ``.npz`` was checked, so a torn sidecar
    artifact (e.g. the quantized tensors) would pass verification and
    surface later as garbage.  Now each manifest entry maps to its file
    (:data:`_ARTIFACT_SUFFIXES`): a missing file, a digest mismatch, or an
    entry this code doesn't know how to locate all raise
    :class:`CheckpointCorrupted` so hot-reloaders quarantine instead of
    serving a partially-verified checkpoint.
    """
    for key, declared in (meta.get("checksum") or {}).items():
        suffix = _ARTIFACT_SUFFIXES.get(key)
        if suffix is None:
            raise CheckpointCorrupted(
                path, f"checksum manifest declares unknown artifact {key!r}")
        artifact = path.with_suffix(suffix)
        if not artifact.exists():
            raise CheckpointCorrupted(
                artifact, f"declared artifact {key!r} is missing")
        actual = checksum_file(artifact)
        if actual != declared:
            raise CheckpointCorrupted(
                artifact, f"{key} checksum {actual} != declared {declared}")


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load (state dict, metadata) from a checkpoint base path.

    When the sidecar declares a checksum manifest (every checkpoint
    written since checksums landed), **all** declared artifacts are
    verified against it before parsing — a mismatch or a missing artifact
    raises :class:`CheckpointCorrupted`, as does an unparseable archive.
    Sidecars without a checksum (older checkpoints) load unverified,
    preserving compatibility.
    """
    path = Path(path)
    weights_path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".json")
    if not weights_path.exists() or not meta_path.exists():
        raise FileNotFoundError(f"checkpoint incomplete at {path}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {meta.get('format_version')}")
    _verify_artifacts(path, meta)
    try:
        with np.load(weights_path) as archive:
            state = {key: archive[key].copy() for key in archive.files}
    except Exception as error:
        # A torn/garbled archive that predates checksums (or got mangled
        # between the verify above and the read) is corruption, not a
        # loader bug: surface it as such so reloaders can quarantine.
        raise CheckpointCorrupted(weights_path, f"unreadable archive: {error}")
    return state, meta


def load_quantized_checkpoint(path: str | Path) -> tuple[
        dict[str, np.ndarray], dict[str, QuantizedWeight], dict]:
    """Load ``(passthrough state, quantized tensors, metadata)``.

    Reads only the sidecar and the ``.quant.npz`` artifact into memory —
    the full-precision archive is verified (streamed checksum) but never
    parsed, so serving a quantized checkpoint keeps the f32 weights off
    the heap.  Raises :class:`CheckpointCorrupted` on any manifest
    mismatch and :class:`FileNotFoundError`/:class:`ValueError` when the
    checkpoint has no quantized artifact.
    """
    path = Path(path)
    quant_path = path.with_suffix(".quant.npz")
    meta_path = path.with_suffix(".json")
    if not meta_path.exists():
        raise FileNotFoundError(f"checkpoint incomplete at {path}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {meta.get('format_version')}")
    if "quantization" not in meta:
        raise ValueError(f"checkpoint {path} was saved without quantize=True")
    _verify_artifacts(path, meta)
    try:
        with np.load(quant_path) as archive:
            arrays = {key: archive[key].copy() for key in archive.files}
    except Exception as error:
        raise CheckpointCorrupted(quant_path, f"unreadable archive: {error}")
    return _split_quantized_arrays(arrays, quant_path) + (meta,)


def _split_quantized_arrays(arrays: dict[str, np.ndarray], origin) -> tuple[
        dict[str, np.ndarray], dict[str, QuantizedWeight]]:
    """Partition ``q:``/``scale:``/``f:`` archive keys into the hydration
    inputs.  Shared by the npz loader above and the mmap'd weight store
    (:func:`repro.serving.checkpoint.load_shared_state`)."""
    state: dict[str, np.ndarray] = {}
    pending_q: dict[str, np.ndarray] = {}
    pending_scale: dict[str, np.ndarray] = {}
    for key, array in arrays.items():
        tag, _, name = key.partition(":")
        if not name or tag not in ("q", "scale", "f"):
            raise CheckpointCorrupted(origin, f"unrecognized array key {key!r}")
        {"q": pending_q, "scale": pending_scale, "f": state}[tag][name] = array
    if set(pending_q) != set(pending_scale):
        raise CheckpointCorrupted(
            origin, "quantized tensors and scales do not pair up")
    quantized = {name: QuantizedWeight(pending_q[name], pending_scale[name])
                 for name in pending_q}
    return state, quantized


def load_model_quantized(path: str | Path, spec: FeatureSpec,
                         taxonomy: Taxonomy, train_dataset=None) -> RankingModel:
    """Rebuild a model from a quantized checkpoint, int8 weights attached.

    The result is inference-only (see
    :func:`repro.nn.quantize.hydrate_quantized`): compiled plans run the
    quantized Linear lane, ``predict`` raises, and the f32 weights are
    never loaded.
    """
    state, quantized, meta = load_quantized_checkpoint(path)
    model = build_model_from_meta(meta, spec, taxonomy,
                                  train_dataset=train_dataset)
    return hydrate_quantized(model, state, quantized)


def build_model_from_meta(meta: dict, spec: FeatureSpec, taxonomy: Taxonomy,
                          train_dataset=None) -> RankingModel:
    """Rebuild the architecture a checkpoint sidecar describes — no weights.

    Factored out of :func:`load_model` so alternative weight sources can
    reuse the rebuild: multi-process serving workers construct the model
    here and then attach memory-mapped parameter files instead of the
    ``.npz`` copy (``load_state_dict(..., copy=False)``).  The returned
    model is freshly initialized and already cast to the sidecar's dtype.
    """
    config_fields = dict(meta["config"])
    # JSON turns tuples into lists; restore the tuple-typed fields.
    for key in ("hidden_sizes", "gate_features", "input_features"):
        if key in config_fields and isinstance(config_fields[key], list):
            config_fields[key] = tuple(config_fields[key])
    config = ModelConfig(**config_fields)
    if "bucket_assignment" in meta:
        from ..models.mmoe import MMoERanker
        buckets = {int(k): int(v) for k, v in meta["bucket_assignment"].items()}
        model: RankingModel = MMoERanker(spec, buckets, config)
    else:
        model = build_model(meta["model_name"], spec, taxonomy, config,
                            train_dataset=train_dataset)
    dtype = meta.get("dtype")
    if dtype is not None and any(p.dtype != np.dtype(dtype) for p in model.parameters()):
        model.astype(np.dtype(dtype))
    return model


def load_model(path: str | Path, spec: FeatureSpec, taxonomy: Taxonomy,
               train_dataset=None) -> RankingModel:
    """Rebuild a model from a checkpoint and restore its weights.

    ``spec``/``taxonomy`` must structurally match the ones the model was
    trained with (same cardinalities); mismatches surface as shape errors.
    """
    state, meta = load_checkpoint(path)
    model = build_model_from_meta(meta, spec, taxonomy,
                                  train_dataset=train_dataset)
    model.load_state_dict(state)
    return model


def _json_default(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value)}")
