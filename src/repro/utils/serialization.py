"""Model checkpointing: save/load parameters + config as .npz / JSON.

The paper's conclusions motivate "extraction and tweaking of
category-dedicated models from the unified ensemble" — which requires being
able to persist and reload trained models.  Checkpoints store the flat
parameter state dict (``numpy.savez``) plus a JSON sidecar with the model
name and :class:`~repro.models.config.ModelConfig` fields, so
:func:`load_model` can rebuild the exact architecture.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..data.schema import FeatureSpec
from ..hierarchy import Taxonomy
from ..models import ModelConfig, build_model
from ..models.base import RankingModel

__all__ = ["save_checkpoint", "load_checkpoint", "load_model"]

_FORMAT_VERSION = 1


def save_checkpoint(model: RankingModel, path: str | Path,
                    model_name: str, extra: dict | None = None) -> Path:
    """Persist a model to ``<path>.npz`` + ``<path>.json``.

    Returns the weights path.  ``extra`` (JSON-serializable) is stored in
    the sidecar, e.g. training metrics.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    weights_path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".json")

    state = model.state_dict()
    np.savez(weights_path, **state)

    config = getattr(model, "config", None)
    if not isinstance(config, ModelConfig):
        raise TypeError("model has no ModelConfig; cannot serialize architecture")
    dtypes = {str(param.dtype) for param in model.parameters()}
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_name": model_name,
        "config": dataclasses.asdict(config),
        # Parameter dtype (recorded when uniform) so a float32-served model
        # reloads as float32 regardless of the ambient default dtype.
        "dtype": dtypes.pop() if len(dtypes) == 1 else None,
        "extra": extra or {},
    }
    # MMoE's task routing lives outside the parameter arrays; persist it so
    # the rebuilt model routes examples identically.
    buckets = getattr(model, "bucket_assignment", None)
    if buckets is not None:
        meta["bucket_assignment"] = {str(k): int(v) for k, v in buckets.items()}
    meta_path.write_text(json.dumps(meta, indent=2, default=_json_default))
    return weights_path


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load (state dict, metadata) from a checkpoint base path."""
    path = Path(path)
    weights_path = path.with_suffix(".npz")
    meta_path = path.with_suffix(".json")
    if not weights_path.exists() or not meta_path.exists():
        raise FileNotFoundError(f"checkpoint incomplete at {path}")
    with np.load(weights_path) as archive:
        state = {key: archive[key].copy() for key in archive.files}
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {meta.get('format_version')}")
    return state, meta


def load_model(path: str | Path, spec: FeatureSpec, taxonomy: Taxonomy,
               train_dataset=None) -> RankingModel:
    """Rebuild a model from a checkpoint and restore its weights.

    ``spec``/``taxonomy`` must structurally match the ones the model was
    trained with (same cardinalities); mismatches surface as shape errors.
    """
    state, meta = load_checkpoint(path)
    config_fields = dict(meta["config"])
    # JSON turns tuples into lists; restore the tuple-typed fields.
    for key in ("hidden_sizes", "gate_features", "input_features"):
        if key in config_fields and isinstance(config_fields[key], list):
            config_fields[key] = tuple(config_fields[key])
    config = ModelConfig(**config_fields)
    if "bucket_assignment" in meta:
        from ..models.mmoe import MMoERanker
        buckets = {int(k): int(v) for k, v in meta["bucket_assignment"].items()}
        model: RankingModel = MMoERanker(spec, buckets, config)
    else:
        model = build_model(meta["model_name"], spec, taxonomy, config,
                            train_dataset=train_dataset)
    dtype = meta.get("dtype")
    if dtype is not None and any(p.dtype != np.dtype(dtype) for p in model.parameters()):
        model.astype(np.dtype(dtype))
    model.load_state_dict(state)
    return model


def _json_default(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value)}")
