"""``repro.utils`` — checkpointing and shared helpers."""

from .serialization import load_checkpoint, load_model, save_checkpoint

__all__ = ["save_checkpoint", "load_checkpoint", "load_model"]
