"""Table 6 — λ1 × λ2 sweep (HSC and AdvLoss weights, powers of 10)."""

from __future__ import annotations

from dataclasses import dataclass

from ..training import lambda_grid
from .common import DEFAULT, Scale, build_environment, model_config, train_and_eval

__all__ = ["Table6Result", "run"]


@dataclass
class Table6Result:
    """AUC per (λ1, λ2) grid point."""

    auc: dict[tuple[float, float], float]

    def format(self) -> str:
        lines = ["Table 6: λ1 / λ2 sweep (AUC).",
                 f"{'λ1':>8}{'λ2':>8}{'AUC':>9}"]
        for (l1, l2), value in sorted(self.auc.items(), reverse=True):
            lines.append(f"{l1:>8.0e}{l2:>8.0e}{value:>9.4f}")
        return "\n".join(lines)

    def best_point(self) -> tuple[float, float]:
        return max(self.auc, key=self.auc.get)


def run(scale: Scale = DEFAULT, seed: int = 0,
        lambdas: list[float] | None = None) -> Table6Result:
    """Regenerate Table 6 with Adv & HSC-MoE."""
    env = build_environment(scale)
    values = lambdas if lambdas is not None else lambda_grid(-3, -1)
    results: dict[tuple[float, float], float] = {}
    for l1 in values:
        for l2 in values:
            config = model_config(scale, seed=seed, lambda_hsc=l1, lambda_adv=l2)
            metrics = train_and_eval("adv-hsc-moe", env, scale, config=config, seed=seed)
            results[(l1, l2)] = metrics["auc"]
    return Table6Result(auc=results)
