"""``repro.experiments`` — one module per paper table/figure (DESIGN.md §4)."""

from . import (fig2, fig3, fig5, fig6, fig7, fig8, querycat_exp, table1,
               table2, table3, table5, table6)
from .common import CI, DEFAULT, PAPER, SCALES, Environment, Scale, build_environment
from .registry import EXPERIMENTS, run_all, run_experiment
from .reporting import render_report, write_report

__all__ = [
    "Scale",
    "CI",
    "DEFAULT",
    "PAPER",
    "SCALES",
    "Environment",
    "build_environment",
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
    "render_report",
    "write_report",
    "table1",
    "table2",
    "table3",
    "table5",
    "table6",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "querycat_exp",
]
