"""Fig. 3 — brand concentration: share of brands covering top 80% of sales.

(a) across the named top-categories — Electronics-like markets should be far
more concentrated than Sports-like ones; (b) across the sub-categories of
one TC — intra-category variance should be small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics import BrandConcentration, concentration_by_category
from .common import DEFAULT, Scale, build_environment
from .fig2 import INTRA_CATEGORY, NAMED_CATEGORIES

__all__ = ["Fig3Result", "run"]


@dataclass
class Fig3Result:
    """Concentration per TC (a) and per SC of one TC (b)."""

    inter: dict[int, BrandConcentration]
    intra: dict[int, BrandConcentration]
    category_names: dict[int, str]

    def format(self) -> str:
        lines = ["Fig 3: brands covering the top 80% of sales."]
        lines.append("(a) inter-categories")
        lines.append(f"{'category':<16}{'proportion':>12}{'# brands':>10}")
        for cat, conc in self.inter.items():
            name = self.category_names.get(cat, str(cat))
            lines.append(f"{name:<16}{conc.proportion:>12.3f}{conc.brands_for_top_share:>10}")
        lines.append(f"(b) intra-categories ({INTRA_CATEGORY})")
        for cat, conc in self.intra.items():
            name = self.category_names.get(-cat - 1, str(cat))
            lines.append(f"{name:<16}{conc.proportion:>12.3f}{conc.brands_for_top_share:>10}")
        lines.append(f"inter std={self.inter_std():.4f}  intra std={self.intra_std():.4f}")
        return "\n".join(lines)

    def inter_std(self) -> float:
        return float(np.std([c.proportion for c in self.inter.values()]))

    def intra_std(self) -> float:
        return float(np.std([c.proportion for c in self.intra.values()]))


def run(scale: Scale = DEFAULT) -> Fig3Result:
    """Regenerate Fig. 3's numbers."""
    env = build_environment(scale)
    by_name = {tc.name: tc.tc_id for tc in env.taxonomy.top_categories}
    tc_ids = [by_name[n] for n in NAMED_CATEGORIES if n in by_name]
    total = env.world.config.brands_per_tc  # full market size per TC
    inter_sales = {t: s for t, s in env.world.brand_sales_by_tc().items() if t in tc_ids}
    inter = concentration_by_category(inter_sales, total_brands=total)
    intra_parent = by_name[INTRA_CATEGORY]
    intra = concentration_by_category(env.world.brand_sales_by_sc(intra_parent),
                                      total_brands=total)
    names = {tc.tc_id: tc.name for tc in env.taxonomy.top_categories}
    names.update({-sc.sc_id - 1: sc.name for sc in env.taxonomy.sub_categories})
    return Fig3Result(inter=inter, intra=intra, category_names=names)
