"""Table 1 — dataset statistics.

Reports the size of the full training/test sets plus the three named
category slices the paper uses (Mobile Phone, Books, Clothing), along with
category/query counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data import DatasetStatistics, compute_statistics, format_table1
from .common import DEFAULT, Environment, Scale, build_environment

__all__ = ["Table1Result", "run", "SLICE_CATEGORIES"]

# The paper's named slices; these exist in the default taxonomy.
SLICE_CATEGORIES = ("Mobile Phone", "Books", "Clothing")


@dataclass
class Table1Result:
    """Statistics for the complete dataset and each named slice."""

    complete: tuple[DatasetStatistics, DatasetStatistics]
    slices: dict[str, tuple[DatasetStatistics, DatasetStatistics]]

    def format(self) -> str:
        rows = [("Complete", *self.complete)]
        rows += [(name, train, test) for name, (train, test) in self.slices.items()]
        return format_table1(rows)


def _tc_id_by_name(env: Environment, name: str) -> int:
    for tc in env.taxonomy.top_categories:
        if tc.name == name:
            return tc.tc_id
    raise KeyError(f"top category {name!r} not in taxonomy")


def run(scale: Scale = DEFAULT) -> Table1Result:
    """Regenerate Table 1 at the given scale."""
    env = build_environment(scale)
    complete = (compute_statistics(env.train, "complete-train"),
                compute_statistics(env.test, "complete-test"))
    slices: dict[str, tuple[DatasetStatistics, DatasetStatistics]] = {}
    for name in SLICE_CATEGORIES:
        tc_id = _tc_id_by_name(env, name)
        slices[name] = (
            compute_statistics(env.train.filter_by_tc(tc_id), f"{name}-train"),
            compute_statistics(env.test.filter_by_tc(tc_id), f"{name}-test"),
        )
    return Table1Result(complete=complete, slices=slices)
