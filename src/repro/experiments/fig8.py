"""Fig. 8 / Table 7 — case study: per-expert scores under MoE vs Adv&HSC-MoE.

Reproduces the paper's qualitative comparison: one session with a purchased
item and two non-purchased items; for each model, the sigmoid score of every
expert and which experts the gate selected.  The paper's observation: under
the improved model the active experts *disagree* (some score negatives low
even when others score them high), fixing the baseline's unanimous mistakes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import CaseStudy, pick_case_session, run_case_study
from .common import DEFAULT, Scale, build_environment, model_config, train_and_eval

__all__ = ["Fig8Result", "run", "expert_score_spread"]


def expert_score_spread(case: CaseStudy) -> float:
    """Mean std of the *selected* experts' scores across items.

    Higher spread = more disagreement among active experts, the quantity
    AdvLoss is designed to increase.
    """
    spreads = [float(np.std(item.expert_scores[item.selected])) for item in case.items]
    return float(np.mean(spreads))


@dataclass
class Fig8Result:
    """Case studies for the two compared models on the same session."""

    baseline: CaseStudy
    improved: CaseStudy

    def format(self) -> str:
        lines = ["Fig 8 / Table 7: per-expert scores on one session",
                 f"(session {self.baseline.session_id}; item 0 is the purchase)"]
        for case in (self.baseline, self.improved):
            lines.append(f"model: {case.model_name} "
                         f"(selected-expert score spread {expert_score_spread(case):.4f})")
            for index, item in enumerate(case.items):
                marks = "".join("*" if s else " " for s in item.selected)
                scores = " ".join(f"{v:.2f}" for v in item.expert_scores)
                lines.append(f"  item {index} label={item.label} "
                             f"pred={item.prediction:.4f}  experts=[{scores}] sel=[{marks}]")
        return "\n".join(lines)

    def improved_has_more_disagreement(self) -> bool:
        return expert_score_spread(self.improved) > expert_score_spread(self.baseline)


def run(scale: Scale = DEFAULT, seed: int = 0) -> Fig8Result:
    """Regenerate the Fig. 8 case study."""
    env = build_environment(scale)
    config = model_config(scale, seed=seed)
    _, baseline = train_and_eval("moe", env, scale, config=config, seed=seed,
                                 return_model=True)
    _, improved = train_and_eval("adv-hsc-moe", env, scale, config=config,
                                 seed=seed, return_model=True)
    rows = pick_case_session(env.test, num_negatives=2, seed=seed)
    return Fig8Result(
        baseline=run_case_study(baseline, env.test, rows, model_name="moe"),
        improved=run_case_study(improved, env.test, rows, model_name="adv-hsc-moe"),
    )
