"""§4.1 experiment — query → category classification accuracy.

Not a numbered table in the paper, but a load-bearing component: query SC
ids (the gate input) come from a BiGRU classifier over query text, with TC
resolved through the hierarchy.  This experiment verifies the pipeline
reaches high accuracy on the synthetic queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import nn
from ..querycat import (ClassifierResult, QueryCategoryClassifier,
                        QueryClassifierConfig, train_classifier)
from .common import DEFAULT, Scale, build_environment

__all__ = ["QuerycatResult", "run"]


@dataclass
class QuerycatResult:
    """Classifier accuracies (plus the trained model, for serving)."""

    result: ClassifierResult
    num_queries: int
    num_classes: int
    model: QueryCategoryClassifier | None = None

    def format(self) -> str:
        return ("Query classifier (§4.1): "
                f"{self.num_queries} queries, {self.num_classes} sub-categories -> "
                f"SC accuracy {self.result.sc_accuracy:.4f}, "
                f"TC accuracy {self.result.tc_accuracy:.4f}")


def run(scale: Scale = DEFAULT, epochs: int | None = None, seed: int = 0) -> QuerycatResult:
    """Train the BiGRU classifier on the environment's query table."""
    env = build_environment(scale)
    queries = env.log.queries
    config = QueryClassifierConfig(seed=seed)
    if epochs is not None:
        config.epochs = epochs
    if scale.name == "ci":
        config.epochs = 2
        config.hidden_size = 12
        config.embedding_dim = 8
    # Build and train at the scale's dtype (float32 by default since the
    # recurrent pipeline holds f32 end to end).
    with nn.default_dtype(scale.np_dtype):
        model = QueryCategoryClassifier(queries.vocab_size,
                                        env.taxonomy.max_sc_id() + 1, config)
        result = train_classifier(model, queries, env.taxonomy)
    return QuerycatResult(result=result, num_queries=queries.num_queries,
                          num_classes=env.taxonomy.max_sc_id() + 1, model=model)
