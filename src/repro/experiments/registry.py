"""Registry mapping experiment ids (table/figure numbers) to runners."""

from __future__ import annotations

from typing import Callable

from . import (fig2, fig3, fig5, fig6, fig7, fig8, querycat_exp, table1,
               table2, table3, table5, table6)
from .common import DEFAULT, SCALES, Scale

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: dict[str, Callable[[Scale], object]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table5": table5.run,
    "table6": table6.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "querycat": querycat_exp.run,
}


def run_experiment(name: str, scale: Scale = DEFAULT):
    """Run one experiment by id (e.g. "table2", "fig6")."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choices: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](scale)


def run_all(scale: Scale = DEFAULT, names: list[str] | None = None) -> dict[str, object]:
    """Run every (or the named) experiments and return id → result.

    Unknown names are rejected up front, before any experiment runs — a
    typo at position N must not waste the N-1 experiments before it.
    """
    selected = list(names) if names else list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown!r}; choices: {sorted(EXPERIMENTS)}")
    return {name: run_experiment(name, scale) for name in selected}


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.experiments.registry [experiment] [--scale s]``."""
    import argparse

    parser = argparse.ArgumentParser(description="Run paper experiments")
    parser.add_argument("experiment", nargs="?", default=None,
                        choices=sorted(EXPERIMENTS) + [None],
                        help="experiment id; omit to run all")
    parser.add_argument("--scale", default="default", choices=sorted(SCALES),
                        help="scale preset")
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    names = [args.experiment] if args.experiment else None
    for name, result in run_all(scale, names).items():
        print(f"==== {name} ====")
        print(result.format() if hasattr(result, "format") else result)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
