"""Fig. 6 — t-SNE of inference gate vectors under MoE / Adv-MoE / Adv&HSC-MoE.

Claims to reproduce (quantified with silhouette scores over the Table 4
semantic groups): Adv-MoE clusters better than vanilla MoE, and Adv&HSC-MoE
produces the cleanest separation of all.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import GateAnalysis, TSNEConfig, analyze_gate_clustering
from .common import DEFAULT, Scale, build_environment, model_config, train_and_eval

__all__ = ["Fig6Result", "run"]

_PANELS = ("moe", "adv-moe", "adv-hsc-moe")


@dataclass
class Fig6Result:
    """One :class:`GateAnalysis` per Fig. 6 panel."""

    panels: dict[str, GateAnalysis]

    def format(self) -> str:
        lines = ["Fig 6: gate-vector clustering by semantic group",
                 f"{'model':<14}{'silhouette(gate)':>18}{'silhouette(tsne)':>18}"
                 f"{'intra/inter':>13}"]
        for name, analysis in self.panels.items():
            tsne_s = (f"{analysis.silhouette_embedding:.4f}"
                      if analysis.silhouette_embedding is not None else "n/a")
            lines.append(f"{name:<14}{analysis.silhouette_gate:>18.4f}"
                         f"{tsne_s:>18}{analysis.intra_inter:>13.4f}")
        return "\n".join(lines)

    def ordering_holds(self) -> bool:
        """True when silhouette improves monotonically MoE → Adv → Adv&HSC."""
        values = [self.panels[name].silhouette_gate for name in _PANELS]
        return values[0] <= values[1] <= values[2] or values[0] < values[2]


def run(scale: Scale = DEFAULT, seed: int = 0, run_tsne: bool = True) -> Fig6Result:
    """Train the three panel models and analyze their gate vectors."""
    env = build_environment(scale)
    config = model_config(scale, seed=seed)
    tsne_config = TSNEConfig(seed=seed, n_iter=scale.tsne_iters,
                             exaggeration_iters=min(100, scale.tsne_iters // 3),
                             perplexity=min(30.0, max(5.0, scale.tsne_examples / 8)))
    panels: dict[str, GateAnalysis] = {}
    for name in _PANELS:
        _, model = train_and_eval(name, env, scale, config=config, seed=seed,
                                  return_model=True)
        panels[name] = analyze_gate_clustering(
            model, env.test, model_name=name,
            max_examples=scale.tsne_examples, run_tsne=run_tsne,
            seed=seed, tsne_config=tsne_config)
    return Fig6Result(panels=panels)
