"""Table 2 — full model comparison: AUC / NDCG@10 / NDCG for all 7 models.

Paper setting: N=10 experts, K=4, D=1; MMoE variants with 4 and 10 experts;
every model trained on the same log with the same optimizer settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models.factory import MODEL_NAMES
from .common import DEFAULT, Scale, build_environment, model_config, train_and_eval

__all__ = ["Table2Result", "run"]


@dataclass
class Table2Result:
    """Metrics per model, in the paper's row order.

    When ``run`` is given multiple seeds, ``metrics`` holds the seed means
    and ``spread`` the per-metric std across seeds (the noise floor the
    EXPERIMENTS.md discussion is calibrated against).
    """

    metrics: dict[str, dict[str, float]]
    spread: dict[str, dict[str, float]] = field(default_factory=dict)
    num_seeds: int = 1

    def format(self) -> str:
        suffix = f" (mean of {self.num_seeds} seeds)" if self.num_seeds > 1 else ""
        lines = [f"Table 2: Performance on Different Models.{suffix}",
                 f"{'Model':<16}{'AUC':>9}{'NDCG@10':>10}{'NDCG':>9}"]
        for name in MODEL_NAMES:
            if name not in self.metrics:
                continue
            m = self.metrics[name]
            row = f"{name:<16}{m['auc']:>9.4f}{m['ndcg@10']:>10.4f}{m['ndcg']:>9.4f}"
            if name in self.spread:
                row += f"  (±{self.spread[name]['auc']:.4f} AUC)"
            lines.append(row)
        return "\n".join(lines)

    def improvement_over_dnn(self, metric: str = "auc") -> dict[str, float]:
        """Absolute gain of every model over the DNN baseline."""
        base = self.metrics["dnn"][metric]
        return {name: m[metric] - base for name, m in self.metrics.items() if name != "dnn"}


def run(scale: Scale = DEFAULT, models: tuple[str, ...] = MODEL_NAMES,
        seed: int = 0, seeds: tuple[int, ...] | None = None) -> Table2Result:
    """Train and evaluate every model in ``models`` at the given scale.

    Pass ``seeds`` to average each model over several initializations — the
    paper's Adv/HSC deltas (0.02-0.5% AUC) sit near the single-run noise
    floor at reduced scale, so multi-seed means are the honest way to
    compare variants (see EXPERIMENTS.md, Table 2 discussion).
    """
    env = build_environment(scale)
    seed_list = tuple(seeds) if seeds else (seed,)
    per_seed: dict[str, list[dict[str, float]]] = {name: [] for name in models}
    for s in seed_list:
        for name in models:
            config = model_config(scale, seed=s)
            per_seed[name].append(train_and_eval(name, env, scale, config=config, seed=s))
    metrics: dict[str, dict[str, float]] = {}
    spread: dict[str, dict[str, float]] = {}
    for name, runs in per_seed.items():
        keys = runs[0].keys()
        metrics[name] = {k: float(np.mean([r[k] for r in runs])) for k in keys}
        if len(runs) > 1:
            spread[name] = {k: float(np.std([r[k] for r in runs])) for k in keys}
    return Table2Result(metrics=metrics, spread=spread, num_seeds=len(seed_list))
