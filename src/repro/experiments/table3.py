"""Table 3 — per-category vs joint training.

The paper trains three per-category DNNs (Mobile Phone, Books, Clothing),
one joint DNN and one joint Adv & HSC-MoE, then evaluates each on the three
category test slices.  The claims to reproduce: (1) joint training helps the
small category most; (2) Joint-Ours beats Joint-DNN and the dedicated DNNs
on every slice.

Category roles are assigned by measured training volume — the two largest
named slices play the paper's "M"/"B" (data-rich) roles and the smallest
plays "C" (data-poor) — so the size relationships of Table 3 hold no matter
how the synthetic Zipf traffic lands on the named categories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..training import evaluate
from .common import (DEFAULT, Environment, Scale, build_environment,
                     model_config, train_and_eval)

__all__ = ["Table3Result", "run", "pick_table3_categories"]


@dataclass
class Table3Result:
    """AUC of each model on each category test slice."""

    categories: list[str]                      # slice names, size-descending
    sizes: dict[str, int]                      # training examples per slice
    dedicated: dict[str, float]                # per-category DNN on own slice
    joint_dnn: dict[str, float]                # joint DNN per slice
    joint_ours: dict[str, float]               # joint Adv & HSC-MoE per slice

    def format(self) -> str:
        header = f"{'Model':<14}" + "".join(f"{c:>14}" for c in self.categories)
        lines = ["Table 3: per-category vs joint training (AUC).", header]
        row = f"{'size(train)':<14}" + "".join(f"{self.sizes[c]:>14,}" for c in self.categories)
        lines.append(row)
        dedicated = f"{'<cat>-DNN':<14}" + "".join(
            f"{self.dedicated[c]:>14.4f}" for c in self.categories)
        lines.append(dedicated)
        joint = f"{'Joint-DNN':<14}" + "".join(
            f"{self.joint_dnn[c]:>14.4f}" for c in self.categories)
        lines.append(joint)
        ours = f"{'Joint-Ours':<14}" + "".join(
            f"{self.joint_ours[c]:>14.4f}" for c in self.categories)
        lines.append(ours)
        return "\n".join(lines)

    def joint_gain(self) -> dict[str, float]:
        """Joint-DNN minus dedicated DNN per category (paper: biggest on C)."""
        return {c: self.joint_dnn[c] - self.dedicated[c] for c in self.categories}


def pick_table3_categories(env: Environment, num: int = 3,
                           min_test_sessions: int | None = None) -> list[int]:
    """Pick ``num`` TC ids: the largest ones plus one small category.

    Mirrors the paper's mix of two data-rich slices and one data-poor slice.
    Only categories with enough evaluable test sessions are considered;
    the threshold auto-scales with the environment size when not given.
    """
    if min_test_sessions is None:
        # Keep the bar low: the point of the experiment is to include a
        # genuinely data-poor category, so only require enough mixed-label
        # test sessions for the AUC estimate to be meaningful.
        min_test_sessions = max(5, min(10, env.test.num_sessions // 50))
    counts = {}
    for tc in env.taxonomy.top_categories:
        train_size = int((env.train.query_tc == tc.tc_id).sum())
        test_sessions = env.test.filter_by_tc(tc.tc_id).sessions_with_label_mix().size
        if test_sessions >= min_test_sessions:
            counts[tc.tc_id] = train_size
    ordered = sorted(counts, key=counts.get, reverse=True)
    if len(ordered) < num:
        raise ValueError("not enough categories with evaluable test sessions")
    return ordered[:num - 1] + [ordered[-1]]


def _equalized_scale(scale: Scale, train_size: int, reference_size: int) -> Scale:
    """Scale epochs up so slice-trained models see as many gradient steps as
    a full-data run would — small slices need more passes to converge, and
    the paper trains every model to comparable convergence."""
    if train_size <= 0:
        raise ValueError("empty training slice")
    factor = max(1.0, reference_size / train_size)
    epochs = int(min(np.ceil(scale.epochs * factor), scale.epochs * 12))
    return scale.with_updates(epochs=epochs)


def run(scale: Scale = DEFAULT, seed: int = 0) -> Table3Result:
    """Regenerate Table 3."""
    env = build_environment(scale)
    tc_ids = pick_table3_categories(env)
    names = [env.taxonomy.top_category(t).name for t in tc_ids]

    slices_train = {n: env.train.filter_by_tc(t) for n, t in zip(names, tc_ids)}
    slices_test = {n: env.test.filter_by_tc(t) for n, t in zip(names, tc_ids)}
    sizes = {n: len(slices_train[n]) for n in names}

    joined_train = slices_train[names[0]]
    for name in names[1:]:
        joined_train = joined_train.concat(slices_train[name])

    config = model_config(scale, seed=seed)
    reference = len(env.train)
    dedicated: dict[str, float] = {}
    for name in names:
        slice_scale = _equalized_scale(scale, sizes[name], reference)
        metrics = train_and_eval("dnn", env, slice_scale, config=config,
                                 train_dataset=slices_train[name],
                                 test_dataset=slices_test[name], seed=seed)
        dedicated[name] = metrics["auc"]

    joint_scale = _equalized_scale(scale, len(joined_train), reference)
    _, joint_dnn_model = train_and_eval("dnn", env, joint_scale, config=config,
                                        train_dataset=joined_train,
                                        test_dataset=slices_test[names[0]],
                                        seed=seed, return_model=True)
    _, joint_ours_model = train_and_eval("adv-hsc-moe", env, joint_scale, config=config,
                                         train_dataset=joined_train,
                                         test_dataset=slices_test[names[0]],
                                         seed=seed, return_model=True)
    joint_dnn = {n: evaluate(joint_dnn_model, slices_test[n])["auc"] for n in names}
    joint_ours = {n: evaluate(joint_ours_model, slices_test[n])["auc"] for n in names}

    return Table3Result(categories=names, sizes=sizes, dedicated=dedicated,
                        joint_dnn=joint_dnn, joint_ours=joint_ours)
