"""Render experiment results into a single markdown report.

``python -m repro.experiments.reporting --scale default -o report.md``
regenerates every table/figure and writes one document — the mechanical part
of EXPERIMENTS.md (the paper-vs-measured commentary stays hand-written).
"""

from __future__ import annotations

import time
from pathlib import Path

from .common import DEFAULT, SCALES, Scale
from .registry import EXPERIMENTS, run_experiment

__all__ = ["render_report", "write_report"]

_TITLES = {
    "table1": "Table 1 — dataset statistics",
    "table2": "Table 2 — model comparison",
    "table3": "Table 3 — per-category vs joint training",
    "table5": "Table 5 — gate input features",
    "table6": "Table 6 — λ1 × λ2 sweep",
    "fig2": "Fig. 2 — feature importance inter vs intra categories",
    "fig3": "Fig. 3 — brand concentration",
    "fig5": "Fig. 5 — AUC improvement by category-size bucket",
    "fig6": "Fig. 6 — gate-vector clustering",
    "fig7": "Fig. 7 — (N, K, D) sweep",
    "fig8": "Fig. 8 / Table 7 — case-study expert scores",
    "querycat": "§4.1 — query → category classifier",
}


def render_report(scale: Scale = DEFAULT, names: list[str] | None = None) -> str:
    """Run the selected experiments and return the markdown report text."""
    selected = names or list(EXPERIMENTS)
    unknown = [n for n in selected if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    lines = [
        "# Reproduction report",
        "",
        f"Scale preset: `{scale.name}` ({scale.num_queries} queries, "
        f"{scale.epochs} epochs, towers {scale.hidden_sizes}, "
        f"embedding {scale.embedding_dim}).",
        "",
    ]
    for name in selected:
        started = time.time()
        result = run_experiment(name, scale)
        body = result.format() if hasattr(result, "format") else str(result)
        lines.append(f"## {_TITLES.get(name, name)}")
        lines.append("")
        lines.append("```")
        lines.append(body)
        lines.append("```")
        lines.append(f"_(regenerated in {time.time() - started:.0f}s)_")
        lines.append("")
    return "\n".join(lines)


def write_report(path: str | Path, scale: Scale = DEFAULT,
                 names: list[str] | None = None) -> Path:
    """Render and write the report; returns the output path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(scale, names))
    return path


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Write a reproduction report")
    parser.add_argument("-o", "--output", default="report.md")
    parser.add_argument("--scale", default="default", choices=sorted(SCALES))
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids to include (default: all)")
    args = parser.parse_args(argv)
    path = write_report(args.output, SCALES[args.scale], args.only)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
