"""Table 5 — gate input feature ablation.

The paper feeds the inference gate different feature sets (SC alone; TC+SC;
query+TC+SC; user+TC+SC; all features) and finds SC alone is best — item-side
gate features cause intra-session prediction variance ("ranking noise").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.base import GATE_FEATURE_PRESETS
from .common import DEFAULT, Scale, build_environment, model_config, train_and_eval

__all__ = ["Table5Result", "run", "GATE_INPUT_ROWS"]

# Paper row label → (preset key, include numeric features in gate input).
GATE_INPUT_ROWS: dict[str, tuple[str, bool]] = {
    "SC": ("sc", False),
    "(TC, SC)": ("tc_sc", False),
    "(query, TC, SC)": ("query_tc_sc", False),
    "(user feature, TC, SC)": ("user_tc_sc", False),
    "all features": ("all", True),
}


@dataclass
class Table5Result:
    """AUC per gate-input configuration."""

    auc: dict[str, float]

    def format(self) -> str:
        lines = ["Table 5: model performance by gate input feature.",
                 f"{'gate input feature':<26}{'AUC':>9}"]
        for label, value in self.auc.items():
            lines.append(f"{label:<26}{value:>9.4f}")
        return "\n".join(lines)

    def best_row(self) -> str:
        return max(self.auc, key=self.auc.get)


def run(scale: Scale = DEFAULT, seed: int = 0,
        rows: dict[str, tuple[str, bool]] | None = None) -> Table5Result:
    """Regenerate Table 5 (Adv & HSC-MoE with varying gate inputs)."""
    env = build_environment(scale)
    rows = rows or GATE_INPUT_ROWS
    results: dict[str, float] = {}
    for label, (preset, include_numeric) in rows.items():
        config = model_config(
            scale, seed=seed,
            gate_features=GATE_FEATURE_PRESETS[preset],
            gate_include_numeric=include_numeric,
        )
        metrics = train_and_eval("adv-hsc-moe", env, scale, config=config, seed=seed)
        results[label] = metrics["auc"]
    return Table5Result(auc=results)
