"""Shared experiment infrastructure: scale presets and the standard pipeline.

Every table/figure module builds on :func:`build_environment` (world → log →
train/test datasets) and :func:`train_and_eval` (one model end to end).
Three scales are provided (DESIGN.md §6):

* ``CI`` — seconds; used by the test suite and benchmark smoke runs.
* ``DEFAULT`` — the scale the committed EXPERIMENTS.md numbers come from.
* ``PAPER`` — the paper's §5.1.4 hyper-parameters (512x256 towers,
  embedding 16, lr 1e-4, N=10/K=4/D=1, λ=1e-3) at reduced data volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

import numpy as np

from .. import nn
from ..data import (LogConfig, LTRDataset, SyntheticWorld, WorldConfig,
                    dataset_from_log, simulate_log, train_test_split)
from ..data.sessions import SearchLog
from ..hierarchy import Taxonomy, default_taxonomy
from ..models import ModelConfig, build_model
from ..training import TrainConfig, Trainer, evaluate

__all__ = ["Scale", "CI", "DEFAULT", "PAPER", "SCALES", "Environment",
           "build_environment", "train_and_eval", "model_config", "train_config"]


@dataclass(frozen=True)
class Scale:
    """One experiment scale preset."""

    name: str
    num_queries: int
    epochs: int
    batch_size: int
    learning_rate: float
    embedding_dim: int
    hidden_sizes: tuple[int, ...]
    num_experts: int = 10
    top_k: int = 4
    num_disagreeing: int = 1
    lambda_hsc: float = 1e-3
    lambda_adv: float = 1e-3
    world_seed: int = 0
    log_seed: int = 1
    tsne_examples: int = 300
    tsne_iters: int = 300
    # Compute dtype for model parameters and datasets.  float32 is the
    # default since PR 2 made the f32 pipeline hold end to end (≈2x the
    # f64 wall clock at identical metrics); "float64" restores the old
    # behaviour (e.g. for gradcheck-adjacent investigations).
    dtype: str = "float32"

    def with_updates(self, **kwargs) -> "Scale":
        return replace(self, **kwargs)

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)


CI = Scale(name="ci", num_queries=500, epochs=2, batch_size=256,
           learning_rate=3e-3, embedding_dim=6, hidden_sizes=(12,),
           tsne_examples=60, tsne_iters=120)

DEFAULT = Scale(name="default", num_queries=3000, epochs=6, batch_size=256,
                learning_rate=3e-3, embedding_dim=8, hidden_sizes=(16,),
                tsne_examples=300, tsne_iters=300)

PAPER = Scale(name="paper", num_queries=8000, epochs=4, batch_size=256,
              learning_rate=1e-4, embedding_dim=16, hidden_sizes=(512, 256),
              tsne_examples=500, tsne_iters=500)

SCALES = {scale.name: scale for scale in (CI, DEFAULT, PAPER)}


@dataclass
class Environment:
    """A fully materialized experiment world."""

    scale: Scale
    taxonomy: Taxonomy
    world: SyntheticWorld
    log: SearchLog
    dataset: LTRDataset
    train: LTRDataset
    test: LTRDataset
    extras: dict = field(default_factory=dict)


@lru_cache(maxsize=8)
def _cached_environment(scale_name: str, num_queries: int, world_seed: int,
                        log_seed: int) -> Environment:
    scale = SCALES.get(scale_name)
    if scale is None:
        scale = DEFAULT.with_updates(name=scale_name)
    scale = scale.with_updates(num_queries=num_queries, world_seed=world_seed,
                               log_seed=log_seed)
    taxonomy = default_taxonomy()
    world = SyntheticWorld.generate(taxonomy, WorldConfig(seed=scale.world_seed))
    log = simulate_log(world, LogConfig(seed=scale.log_seed,
                                        num_queries=scale.num_queries))
    dataset = dataset_from_log(log)
    train, test = train_test_split(dataset)
    return Environment(scale=scale, taxonomy=taxonomy, world=world, log=log,
                       dataset=dataset, train=train, test=test)


def build_environment(scale: Scale) -> Environment:
    """Build (or fetch from cache) the environment for a scale preset."""
    return _cached_environment(scale.name, scale.num_queries,
                               scale.world_seed, scale.log_seed)


def model_config(scale: Scale, **overrides) -> ModelConfig:
    """The ModelConfig implied by a scale, with optional overrides."""
    base = ModelConfig(
        embedding_dim=scale.embedding_dim,
        hidden_sizes=scale.hidden_sizes,
        num_experts=scale.num_experts,
        top_k=scale.top_k,
        num_disagreeing=scale.num_disagreeing,
        lambda_hsc=scale.lambda_hsc,
        lambda_adv=scale.lambda_adv,
    )
    return base.with_updates(**overrides) if overrides else base


def train_config(scale: Scale, **overrides) -> TrainConfig:
    """The TrainConfig implied by a scale, with optional overrides."""
    config = TrainConfig(epochs=scale.epochs, batch_size=scale.batch_size,
                         learning_rate=scale.learning_rate)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def train_and_eval(name: str, env: Environment, scale: Scale,
                   config: ModelConfig | None = None,
                   train_dataset: LTRDataset | None = None,
                   test_dataset: LTRDataset | None = None,
                   seed: int = 0, return_model: bool = False):
    """Train one named model and evaluate on the test split.

    Returns the metrics dict (auc / ndcg / ndcg@10), or (metrics, model)
    when ``return_model`` is set.
    """
    config = config or model_config(scale, seed=seed)
    train_ds = train_dataset if train_dataset is not None else env.train
    test_ds = test_dataset if test_dataset is not None else env.test
    # Build at the scale's dtype (float32 by default): parameters land on
    # it, and Trainer.fit casts the datasets to match once at load time.
    with nn.default_dtype(scale.np_dtype):
        model = build_model(name, env.dataset.spec, env.taxonomy, config,
                            train_dataset=train_ds)
    trainer = Trainer(model, train_config(scale, seed=seed))
    trainer.fit(train_ds, eval_dataset=None)
    metrics = evaluate(model, test_ds)
    if return_model:
        return metrics, model
    return metrics
