"""Fig. 2 — feature importance across vs within top-categories.

Computes FI(f) (eq. 1) for every numeric feature on (a) the paper's five
named top-categories and (b) the sub-categories of one TC, then compares the
cross-category dispersion: the inter-TC dispersion should dominate the
intra-TC dispersion — the paper's §3 motivation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import feature_importance_by_category, importance_dispersion
from .common import DEFAULT, Environment, Scale, build_environment

__all__ = ["Fig2Result", "run", "NAMED_CATEGORIES", "INTRA_CATEGORY"]

NAMED_CATEGORIES = ("Clothing", "Sports", "Foods", "Computer", "Electronics")
INTRA_CATEGORY = "Foods"  # the paper drills into Foods for Fig. 2(b)


@dataclass
class Fig2Result:
    """Per-category FI tables and their dispersions."""

    inter: dict[int, dict[str, float]]    # TC id -> feature -> FI
    intra: dict[int, dict[str, float]]    # SC id -> feature -> FI
    inter_dispersion: dict[str, float]    # feature -> std across TCs
    intra_dispersion: dict[str, float]    # feature -> std across sibling SCs
    category_names: dict[int, str]

    def format(self) -> str:
        lines = ["Fig 2: feature importance FI(f) per category."]
        features = sorted({f for row in self.inter.values() for f in row})
        header = f"{'category':<16}" + "".join(f"{f[:12]:>14}" for f in features)
        lines.append("(a) inter-categories")
        lines.append(header)
        for cat, row in self.inter.items():
            name = self.category_names.get(cat, str(cat))
            lines.append(f"{name:<16}" + "".join(
                f"{row.get(f, float('nan')):>14.4f}" for f in features))
        lines.append("(b) intra-categories (" + INTRA_CATEGORY + ")")
        for cat, row in self.intra.items():
            name = self.category_names.get(-cat - 1, str(cat))
            lines.append(f"{name:<16}" + "".join(
                f"{row.get(f, float('nan')):>14.4f}" for f in features))
        lines.append("dispersion (std of FI across categories):")
        for f in features:
            inter = self.inter_dispersion.get(f, float("nan"))
            intra = self.intra_dispersion.get(f, float("nan"))
            lines.append(f"  {f:<22} inter={inter:.4f}  intra={intra:.4f}")
        return "\n".join(lines)

    def mean_dispersion_ratio(self) -> float:
        """Mean over features of inter-dispersion / intra-dispersion (> 1
        confirms the paper's claim)."""
        ratios = []
        for feature, inter in self.inter_dispersion.items():
            intra = self.intra_dispersion.get(feature)
            if intra and intra > 0:
                ratios.append(inter / intra)
        if not ratios:
            raise ValueError("no comparable features")
        return float(sum(ratios) / len(ratios))


def _named_tc_ids(env: Environment, names: tuple[str, ...]) -> list[int]:
    by_name = {tc.name: tc.tc_id for tc in env.taxonomy.top_categories}
    return [by_name[n] for n in names if n in by_name]


def run(scale: Scale = DEFAULT) -> Fig2Result:
    """Regenerate Fig. 2's numbers at the given scale."""
    env = build_environment(scale)
    tc_ids = _named_tc_ids(env, NAMED_CATEGORIES)
    inter = feature_importance_by_category(env.dataset, level="tc",
                                           category_ids=tc_ids)
    intra_parent = _named_tc_ids(env, (INTRA_CATEGORY,))[0]
    children = env.taxonomy.children_of(intra_parent)
    intra = feature_importance_by_category(env.dataset, level="sc",
                                           category_ids=children)
    names = {tc.tc_id: tc.name for tc in env.taxonomy.top_categories}
    names.update({-sc.sc_id - 1: sc.name for sc in env.taxonomy.sub_categories})
    return Fig2Result(
        inter=inter,
        intra=intra,
        inter_dispersion=importance_dispersion(inter),
        intra_dispersion=importance_dispersion(intra),
        category_names=names,
    )
