"""Fig. 5 — AUC improvement over DNN per category-size bucket.

Top-categories are bucketed by training data volume; each MoE variant's
per-bucket AUC is compared with the DNN baseline.  Reproduction targets:
improvements are positive across buckets, and the full model's gains are
larger on the small-data buckets (the HSC data-sharing effect).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..training import evaluate
from .common import DEFAULT, Environment, Scale, build_environment, model_config, train_and_eval

__all__ = ["Fig5Result", "run", "bucket_categories"]

_MODELS = ("moe", "adv-moe", "hsc-moe", "adv-hsc-moe")


@dataclass
class Fig5Result:
    """Per-bucket sizes and AUC improvements per model."""

    bucket_sizes: list[int]                       # training examples per bucket
    bucket_tcs: list[list[int]]                   # TC ids per bucket
    dnn_auc: list[float]                          # baseline AUC per bucket
    improvements: dict[str, list[float]]          # model -> per-bucket AUC delta

    def format(self) -> str:
        lines = ["Fig 5: AUC improvement over DNN by category-size bucket",
                 "(buckets ordered small -> large)"]
        header = f"{'bucket':<8}{'size':>10}{'dnn_auc':>10}" + "".join(
            f"{m:>14}" for m in self.improvements)
        lines.append(header)
        for i, size in enumerate(self.bucket_sizes):
            row = f"{i:<8}{size:>10,}{self.dnn_auc[i]:>10.4f}"
            for model in self.improvements:
                row += f"{self.improvements[model][i]:>+14.4f}"
            lines.append(row)
        return "\n".join(lines)

    def small_vs_large_gain(self, model: str = "adv-hsc-moe") -> tuple[float, float]:
        """(gain on smallest bucket, gain on largest bucket)."""
        gains = self.improvements[model]
        return gains[0], gains[-1]


def bucket_categories(env: Environment, num_buckets: int = 4) -> tuple[list[list[int]], list[int]]:
    """Group TCs into ``num_buckets`` by training volume, smallest first.

    Only categories with evaluable test sessions are included.  Buckets hold
    roughly equal numbers of categories (quantile split on size), mirroring
    the paper's size-ordered buckets.
    """
    sizes = {}
    for tc in env.taxonomy.top_categories:
        count = int((env.train.query_tc == tc.tc_id).sum())
        usable = env.test.filter_by_tc(tc.tc_id).sessions_with_label_mix().size
        if count > 0 and usable >= 20:
            sizes[tc.tc_id] = count
    ordered = sorted(sizes, key=sizes.get)
    if len(ordered) < num_buckets:
        raise ValueError("not enough categories for the requested bucket count")
    chunks = np.array_split(np.array(ordered), num_buckets)
    buckets = [chunk.tolist() for chunk in chunks]
    totals = [int(sum(sizes[t] for t in bucket)) for bucket in buckets]
    return buckets, totals


def run(scale: Scale = DEFAULT, num_buckets: int = 4, seed: int = 0,
        models: tuple[str, ...] = _MODELS) -> Fig5Result:
    """Regenerate Fig. 5."""
    env = build_environment(scale)
    buckets, totals = bucket_categories(env, num_buckets)
    test_slices = [env.test.filter_by_tc(bucket) for bucket in buckets]

    config = model_config(scale, seed=seed)
    _, dnn = train_and_eval("dnn", env, scale, config=config, seed=seed,
                            return_model=True)
    dnn_auc = [evaluate(dnn, s)["auc"] for s in test_slices]

    improvements: dict[str, list[float]] = {}
    for name in models:
        _, model = train_and_eval(name, env, scale, config=config, seed=seed,
                                  return_model=True)
        aucs = [evaluate(model, s)["auc"] for s in test_slices]
        improvements[name] = [a - b for a, b in zip(aucs, dnn_auc)]

    return Fig5Result(bucket_sizes=totals, bucket_tcs=buckets,
                      dnn_auc=dnn_auc, improvements=improvements)
