"""Fig. 7 — (N, K, D) hyper-parameter sweep of the HSC & Adv-MoE model.

The paper sweeps N ∈ {10, 16, 32}, K ∈ {2, 4}, D ∈ {1, 2} and observes that
increasing K consistently helps while N and D show no monotonic pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import DEFAULT, Scale, build_environment, model_config, train_and_eval

__all__ = ["Fig7Result", "run", "PAPER_GRID"]

PAPER_GRID = {"num_experts": [10, 16, 32], "top_k": [2, 4], "num_disagreeing": [1, 2]}


@dataclass
class Fig7Result:
    """AUC per (N, K, D) triple."""

    auc: dict[tuple[int, int, int], float]

    def format(self) -> str:
        lines = ["Fig 7: (N, K, D) sweep of HSC & Adv-MoE (AUC).",
                 f"{'N':>4}{'K':>4}{'D':>4}{'AUC':>9}"]
        for (n, k, d), value in sorted(self.auc.items()):
            lines.append(f"{n:>4}{k:>4}{d:>4}{value:>9.4f}")
        return "\n".join(lines)

    def k_effect(self) -> dict[tuple[int, int], float]:
        """AUC(K=4) - AUC(K=2) per (N, D): positive = higher K helps."""
        effect: dict[tuple[int, int], float] = {}
        for (n, k, d), value in self.auc.items():
            if k == 4 and (n, 2, d) in self.auc:
                effect[(n, d)] = value - self.auc[(n, 2, d)]
        return effect

    def best_triple(self) -> tuple[int, int, int]:
        return max(self.auc, key=self.auc.get)


def run(scale: Scale = DEFAULT, seed: int = 0,
        grid: dict[str, list[int]] | None = None) -> Fig7Result:
    """Regenerate Fig. 7."""
    env = build_environment(scale)
    grid = grid or PAPER_GRID
    results: dict[tuple[int, int, int], float] = {}
    for n in grid["num_experts"]:
        for k in grid["top_k"]:
            for d in grid["num_disagreeing"]:
                if k > n or d > n - k:
                    continue
                config = model_config(scale, seed=seed, num_experts=n,
                                      top_k=k, num_disagreeing=d)
                metrics = train_and_eval("adv-hsc-moe", env, scale,
                                         config=config, seed=seed)
                results[(n, k, d)] = metrics["auc"]
    return Fig7Result(auc=results)
