"""Builders for e-commerce taxonomies.

``default_taxonomy`` hand-writes the named categories the paper discusses
(Clothing, Sports, Foods, Computer, Electronics, Mobile Phone, Books, ...)
grouped into the Table 4 semantic classes, and ``random_taxonomy`` extends a
base taxonomy to arbitrary TC/SC counts for scale experiments (the paper's
log has 38 TCs and 3,479 SCs).
"""

from __future__ import annotations

import numpy as np

from .taxonomy import SubCategory, Taxonomy, TopCategory

__all__ = ["default_taxonomy", "random_taxonomy", "SEMANTIC_GROUPS"]

# Table 4 of the paper: semantic classes for Fig. 6 coloring.
SEMANTIC_GROUPS = ("daily_necessities", "electronics", "fashion")

# name → (semantic_group, sub-category names).  Named categories from the
# paper's §3, §5.1 and Table 4 plus enough filler to exercise the hierarchy.
_DEFAULT_SPEC: dict[str, tuple[str, tuple[str, ...]]] = {
    "Foods": ("daily_necessities", ("Snacks", "Beverages", "Grain & Oil", "Fresh Produce", "Dairy", "Instant Food")),
    "Kitchenware": ("daily_necessities", ("Cookware", "Tableware", "Kitchen Storage", "Bakeware")),
    "Furniture": ("daily_necessities", ("Sofas", "Beds", "Tables", "Chairs", "Wardrobes")),
    "Household": ("daily_necessities", ("Cleaning", "Laundry", "Paper Goods", "Storage")),
    "Books": ("daily_necessities", ("Fiction", "Children's Books", "Textbooks", "Comics", "Biography")),
    "Mobile Phone": ("electronics", ("Smartphones", "Feature Phones", "Phone Cases", "Chargers", "Screen Protectors")),
    "Computer": ("electronics", ("Laptops", "Desktops", "Monitors", "Keyboards", "Mice", "Components")),
    "Electronics": ("electronics", ("TV", "Refrigerator", "Washing Machine", "Air Conditioner", "Cameras", "Audio")),
    "Smart Devices": ("electronics", ("Smart Watches", "Smart Speakers", "Drones", "VR Headsets")),
    "Clothing": ("fashion", ("Dresses", "T-Shirts", "Jeans", "Coats", "Sportswear", "Underwear")),
    "Shoes": ("fashion", ("Sneakers", "Boots", "Sandals", "Dress Shoes")),
    "Jewelry": ("fashion", ("Necklaces", "Rings", "Earrings", "Bracelets")),
    "Leather": ("fashion", ("Handbags", "Wallets", "Belts", "Luggage")),
    "Sports": ("fashion", ("Fitness Gear", "Outdoor", "Ball Sports", "Cycling", "Swimming")),
}


def default_taxonomy() -> Taxonomy:
    """The hand-written 14-TC taxonomy covering every category the paper names."""
    tops: list[TopCategory] = []
    subs: list[SubCategory] = []
    sc_id = 0
    for tc_id, (name, (group, children)) in enumerate(_DEFAULT_SPEC.items()):
        tops.append(TopCategory(tc_id=tc_id, name=name, semantic_group=group))
        for child in children:
            subs.append(SubCategory(sc_id=sc_id, name=child, tc_id=tc_id))
            sc_id += 1
    return Taxonomy(top_categories=tops, sub_categories=subs)


def random_taxonomy(num_top: int, subs_per_top: tuple[int, int],
                    rng: np.random.Generator) -> Taxonomy:
    """Generate a synthetic taxonomy of ``num_top`` TCs.

    Parameters
    ----------
    num_top:
        Number of top categories (the paper's log has 38).
    subs_per_top:
        Inclusive (low, high) range for children counts per TC.
    rng:
        Random generator for reproducibility.
    """
    if num_top <= 0:
        raise ValueError("num_top must be positive")
    low, high = subs_per_top
    if low <= 0 or high < low:
        raise ValueError("subs_per_top must satisfy 0 < low <= high")
    tops: list[TopCategory] = []
    subs: list[SubCategory] = []
    sc_id = 0
    for tc_id in range(num_top):
        group = SEMANTIC_GROUPS[int(rng.integers(len(SEMANTIC_GROUPS)))]
        tops.append(TopCategory(tc_id=tc_id, name=f"TC-{tc_id}", semantic_group=group))
        for child_index in range(int(rng.integers(low, high + 1))):
            subs.append(SubCategory(sc_id=sc_id, name=f"SC-{tc_id}-{child_index}", tc_id=tc_id))
            sc_id += 1
    return Taxonomy(top_categories=tops, sub_categories=subs)
