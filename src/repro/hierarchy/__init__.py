"""``repro.hierarchy`` — the TC/SC category tree (paper Figure 1, Table 4)."""

from .builder import SEMANTIC_GROUPS, default_taxonomy, random_taxonomy
from .taxonomy import SubCategory, Taxonomy, TopCategory

__all__ = [
    "Taxonomy",
    "TopCategory",
    "SubCategory",
    "default_taxonomy",
    "random_taxonomy",
    "SEMANTIC_GROUPS",
]
