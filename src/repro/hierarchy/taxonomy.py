"""Two-level category taxonomy: top-categories (TC) and sub-categories (SC).

The paper's category system "has a hierarchical tree structure, with the
parent nodes given by the top-categories (TC) and child nodes by the
sub-categories (SC)" (§5.1.1, Figure 1).  This module is the canonical
representation used by the data generator, the HSC gate (TC ids derived from
SC ids), and the Fig. 6 semantic-group coloring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TopCategory", "SubCategory", "Taxonomy"]


@dataclass(frozen=True)
class TopCategory:
    """A top-level category node (e.g. "Electronics")."""

    tc_id: int
    name: str
    semantic_group: str = "other"


@dataclass(frozen=True)
class SubCategory:
    """A leaf category node (e.g. "Mobile Phone" under "Electronics")."""

    sc_id: int
    name: str
    tc_id: int


@dataclass
class Taxonomy:
    """An immutable-after-build TC → SC tree with id-based lookups."""

    top_categories: list[TopCategory] = field(default_factory=list)
    sub_categories: list[SubCategory] = field(default_factory=list)

    def __post_init__(self):
        self._validate()
        self._tc_by_id = {tc.tc_id: tc for tc in self.top_categories}
        self._sc_by_id = {sc.sc_id: sc for sc in self.sub_categories}
        self._children: dict[int, list[int]] = {tc.tc_id: [] for tc in self.top_categories}
        for sc in self.sub_categories:
            self._children[sc.tc_id].append(sc.sc_id)
        # Dense arrays for vectorized parent lookups during training.
        max_sc = max((sc.sc_id for sc in self.sub_categories), default=-1)
        self._parent_array = np.full(max_sc + 1, -1, dtype=np.int64)
        for sc in self.sub_categories:
            self._parent_array[sc.sc_id] = sc.tc_id

    def _validate(self) -> None:
        tc_ids = [tc.tc_id for tc in self.top_categories]
        sc_ids = [sc.sc_id for sc in self.sub_categories]
        if len(set(tc_ids)) != len(tc_ids):
            raise ValueError("duplicate top-category ids")
        if len(set(sc_ids)) != len(sc_ids):
            raise ValueError("duplicate sub-category ids")
        if any(i < 0 for i in tc_ids) or any(i < 0 for i in sc_ids):
            raise ValueError("category ids must be non-negative")
        known_tcs = set(tc_ids)
        for sc in self.sub_categories:
            if sc.tc_id not in known_tcs:
                raise ValueError(f"sub-category {sc.name!r} references unknown TC id {sc.tc_id}")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def num_top_categories(self) -> int:
        return len(self.top_categories)

    @property
    def num_sub_categories(self) -> int:
        return len(self.sub_categories)

    def top_category(self, tc_id: int) -> TopCategory:
        return self._tc_by_id[tc_id]

    def sub_category(self, sc_id: int) -> SubCategory:
        return self._sc_by_id[sc_id]

    def parent_of(self, sc_id: int) -> int:
        """Return the TC id of a sub-category."""
        return self._sc_by_id[sc_id].tc_id

    def parents_of(self, sc_ids: np.ndarray) -> np.ndarray:
        """Vectorized SC → TC mapping (used every forward pass of HSC)."""
        sc_ids = np.asarray(sc_ids, dtype=np.int64)
        out_of_range = (sc_ids < 0) | (sc_ids >= self._parent_array.shape[0])
        if np.any(out_of_range):
            raise KeyError(f"unknown sub-category ids: {np.unique(sc_ids[out_of_range])[:5]}")
        parents = self._parent_array[sc_ids]
        if np.any(parents < 0):
            bad = sc_ids[parents < 0]
            raise KeyError(f"unknown sub-category ids: {np.unique(bad)[:5]}")
        return parents

    def children_of(self, tc_id: int) -> list[int]:
        """Return the SC ids under a top-category."""
        return list(self._children[tc_id])

    def siblings_of(self, sc_id: int) -> list[int]:
        """Return sibling SC ids (sharing the parent TC, excluding itself)."""
        return [c for c in self._children[self.parent_of(sc_id)] if c != sc_id]

    def semantic_group_of(self, tc_id: int) -> str:
        """Return the Fig. 6 / Table 4 semantic group of a top-category."""
        return self._tc_by_id[tc_id].semantic_group

    def semantic_groups(self) -> dict[str, list[int]]:
        """Map semantic group name → list of TC ids."""
        groups: dict[str, list[int]] = {}
        for tc in self.top_categories:
            groups.setdefault(tc.semantic_group, []).append(tc.tc_id)
        return groups

    def max_sc_id(self) -> int:
        """Largest SC id (embedding tables size off this)."""
        return int(self._parent_array.shape[0] - 1) if self.sub_categories else -1

    def max_tc_id(self) -> int:
        """Largest TC id."""
        return max(tc.tc_id for tc in self.top_categories) if self.top_categories else -1

    # ------------------------------------------------------------------
    # Serialization (serving environment bundles)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "top_categories": [{"tc_id": tc.tc_id, "name": tc.name,
                                "semantic_group": tc.semantic_group}
                               for tc in self.top_categories],
            "sub_categories": [{"sc_id": sc.sc_id, "name": sc.name,
                                "tc_id": sc.tc_id}
                               for sc in self.sub_categories],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Taxonomy":
        """Rebuild a taxonomy from :meth:`to_dict` output (e.g. a JSON bundle)."""
        return cls(
            top_categories=[TopCategory(**tc) for tc in payload["top_categories"]],
            sub_categories=[SubCategory(**sc) for sc in payload["sub_categories"]],
        )

    def describe(self) -> str:
        """Human-readable tree summary."""
        lines = [f"Taxonomy: {self.num_top_categories} top categories, "
                 f"{self.num_sub_categories} sub categories"]
        for tc in self.top_categories:
            children = self._children[tc.tc_id]
            lines.append(f"  [{tc.tc_id}] {tc.name} ({tc.semantic_group}): {len(children)} sub-categories")
        return "\n".join(lines)
