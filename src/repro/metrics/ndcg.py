"""NDCG (Järvelin & Kekäläinen 2002), per session, as in the paper (§5.1.2).

"NDCG@N is computed with top N items in rank list" (Table 2 caption); plain
NDCG uses the full list.  Binary purchase labels are the relevance grades.
"""

from __future__ import annotations

import numpy as np

from .auc import iter_sessions

__all__ = ["dcg", "ndcg", "session_ndcg"]


def dcg(relevance_in_rank_order: np.ndarray, k: int | None = None) -> float:
    """Discounted cumulative gain of a relevance list already in rank order.

    Uses the standard gain ``2^rel - 1`` and log2 position discount.
    """
    rel = np.asarray(relevance_in_rank_order, dtype=np.float64)
    if k is not None:
        rel = rel[:k]
    if rel.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, rel.size + 2))
    gains = np.power(2.0, rel) - 1.0
    return float((gains * discounts).sum())


def ndcg(scores: np.ndarray, labels: np.ndarray, k: int | None = None) -> float | None:
    """NDCG of one session; None when the session has no relevant item."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if labels.sum() == 0:
        return None
    order = np.argsort(-scores, kind="mergesort")
    ideal = np.sort(labels)[::-1]
    denominator = dcg(ideal, k)
    if denominator == 0.0:
        return None
    return dcg(labels[order], k) / denominator


def session_ndcg(scores: np.ndarray, labels: np.ndarray, session_ids: np.ndarray,
                 k: int | None = None) -> float:
    """Mean per-session NDCG(@k) over sessions containing a purchase."""
    values = []
    for _, s, l in iter_sessions(session_ids, scores, labels):
        value = ndcg(s, l, k)
        if value is not None:
            values.append(value)
    if not values:
        raise ValueError("no session contains a relevant item")
    return float(np.mean(values))
