"""Brand concentration analysis (paper Fig. 3).

For each category, compute which share (and absolute number) of brands
covers the top 80% of sales volume: "The sales volume in Electronics are
concentrated in the top brands, as top 80% of sales in top 2% brands ...
the distribution of Sports brand is more dispersed ... nearly 10% brands."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BrandConcentration", "brand_concentration", "concentration_by_category"]


@dataclass(frozen=True)
class BrandConcentration:
    """Concentration summary for one category."""

    category_id: int
    num_brands: int               # total brands with sales in the category
    brands_for_top_share: int     # brands needed to cover the sales share
    proportion: float             # brands_for_top_share / num_brands
    share: float                  # the sales share threshold used (0.8)


def brand_concentration(brand_sales: dict[int, float], category_id: int = -1,
                        share: float = 0.8,
                        total_brands: int | None = None) -> BrandConcentration:
    """Compute the top-``share`` brand concentration of one category.

    ``brand_sales`` maps brand id → total sales volume.  ``total_brands``
    optionally sets the proportion denominator to the full brand market size
    (brands with zero observed sales included); by default only brands with
    sales count, which is what log-based measurements (the paper's Fig. 3)
    can observe.
    """
    if not 0.0 < share < 1.0:
        raise ValueError("share must be in (0, 1)")
    if not brand_sales:
        raise ValueError("empty brand sales map")
    volumes = np.sort(np.asarray(list(brand_sales.values()), dtype=np.float64))[::-1]
    if volumes.sum() <= 0:
        raise ValueError("total sales volume must be positive")
    denominator = int(total_brands) if total_brands else int(volumes.size)
    if denominator < volumes.size:
        raise ValueError("total_brands smaller than observed brand count")
    cumulative = np.cumsum(volumes) / volumes.sum()
    needed = int(np.searchsorted(cumulative, share) + 1)
    return BrandConcentration(
        category_id=category_id,
        num_brands=denominator,
        brands_for_top_share=needed,
        proportion=float(needed / denominator),
        share=share,
    )


def concentration_by_category(sales_by_category: dict[int, dict[int, float]],
                              share: float = 0.8,
                              total_brands: int | None = None
                              ) -> dict[int, BrandConcentration]:
    """Fig. 3: concentration per category (TC for 3a, SCs of one TC for 3b)."""
    result: dict[int, BrandConcentration] = {}
    for category_id, brand_sales in sales_by_category.items():
        if brand_sales:
            result[category_id] = brand_concentration(brand_sales, category_id,
                                                      share, total_brands)
    return result
