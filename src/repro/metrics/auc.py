"""ROC-AUC metrics.

The paper evaluates "on a per session basis and averaged over all sessions"
(§5.1.2): within each search session, AUC measures how often the model ranks
the purchased item above non-purchased ones; ties count half.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_auc", "session_auc", "global_auc", "iter_sessions"]


def pairwise_auc(scores: np.ndarray, labels: np.ndarray) -> float | None:
    """AUC of one group via the rank-sum (Mann-Whitney) formulation.

    Returns None when the group lacks both a positive and a negative —
    such sessions are skipped by the session average, as in the paper.
    Ties contribute 1/2, the standard convention.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    positives = int((labels == 1).sum())
    negatives = int(labels.shape[0] - positives)
    if positives == 0 or negatives == 0:
        return None
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over score ties.
    sorted_scores = scores[order]
    tie_starts = np.flatnonzero(np.r_[True, sorted_scores[1:] != sorted_scores[:-1]])
    tie_ends = np.r_[tie_starts[1:], len(scores)]
    for start, stop in zip(tie_starts, tie_ends):
        if stop - start > 1:
            ranks[order[start:stop]] = 0.5 * (start + 1 + stop)
    rank_sum = ranks[labels == 1].sum()
    return float((rank_sum - positives * (positives + 1) / 2.0) / (positives * negatives))


def iter_sessions(session_ids: np.ndarray, *arrays: np.ndarray):
    """Yield (session_id, array_slices...) grouped by session id."""
    session_ids = np.asarray(session_ids)
    order = np.argsort(session_ids, kind="mergesort")
    sorted_ids = session_ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    chunks = [np.split(np.asarray(a)[order], boundaries) for a in arrays]
    ids = [sorted_ids[i] for i in np.r_[0, boundaries]] if len(sorted_ids) else []
    for index, session in enumerate(ids):
        yield session, *(chunk[index] for chunk in chunks)


def session_auc(scores: np.ndarray, labels: np.ndarray, session_ids: np.ndarray) -> float:
    """Mean per-session AUC over sessions with both label classes."""
    values = []
    for _, s, l in iter_sessions(session_ids, scores, labels):
        auc = pairwise_auc(s, l)
        if auc is not None:
            values.append(auc)
    if not values:
        raise ValueError("no session contains both a positive and a negative example")
    return float(np.mean(values))


def global_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Dataset-level AUC ignoring session structure (diagnostic only)."""
    auc = pairwise_auc(scores, labels)
    if auc is None:
        raise ValueError("labels contain a single class")
    return auc
