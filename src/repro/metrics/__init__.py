"""``repro.metrics`` — evaluation metrics from the paper (§3, §5.1.2)."""

from .auc import global_auc, iter_sessions, pairwise_auc, session_auc
from .brand import BrandConcentration, brand_concentration, concentration_by_category
from .clustering import intra_inter_ratio, pairwise_distances, silhouette_score
from .feature_importance import (feature_importance, feature_importance_by_category,
                                 importance_dispersion)
from .ndcg import dcg, ndcg, session_ndcg

__all__ = [
    "pairwise_auc",
    "session_auc",
    "global_auc",
    "iter_sessions",
    "dcg",
    "ndcg",
    "session_ndcg",
    "feature_importance",
    "feature_importance_by_category",
    "importance_dispersion",
    "BrandConcentration",
    "brand_concentration",
    "concentration_by_category",
    "silhouette_score",
    "intra_inter_ratio",
    "pairwise_distances",
]
