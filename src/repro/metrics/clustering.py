"""Cluster quality metrics used to quantify the Fig. 6 claim.

The paper argues visually that gate vectors of semantically similar
categories cluster better under Adv-MoE and Adv & HSC-MoE.  We quantify the
claim with the silhouette coefficient over the semantic-group labels, so the
figure's ordering becomes a measurable number in the benchmark harness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_distances", "silhouette_score", "intra_inter_ratio"]


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix (n, n)."""
    points = np.asarray(points, dtype=np.float64)
    squared = (points ** 2).sum(axis=1)
    d2 = squared[:, None] + squared[None, :] - 2.0 * points @ points.T
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)  # cancel floating-point residue on self-distances
    return np.sqrt(d2)


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient of a labeled point set.

    s(i) = (b(i) - a(i)) / max(a(i), b(i)) where a is mean intra-cluster
    distance and b the mean distance to the nearest other cluster.
    Clusters of size 1 contribute 0, per the standard convention.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette requires at least two clusters")
    if points.shape[0] != labels.shape[0]:
        raise ValueError("points/labels length mismatch")
    distances = pairwise_distances(points)
    n = points.shape[0]
    scores = np.zeros(n)
    masks = {c: labels == c for c in unique}
    for i in range(n):
        own = masks[labels[i]]
        own_size = own.sum()
        if own_size <= 1:
            scores[i] = 0.0
            continue
        a = distances[i][own].sum() / (own_size - 1)
        b = np.inf
        for c in unique:
            if c == labels[i]:
                continue
            other = masks[c]
            b = min(b, distances[i][other].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def intra_inter_ratio(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean intra-cluster distance divided by mean inter-cluster distance.

    A complementary (cheaper) clustering statistic: lower = tighter clusters.
    """
    distances = pairwise_distances(points)
    labels = np.asarray(labels)
    same = labels[:, None] == labels[None, :]
    off_diagonal = ~np.eye(len(labels), dtype=bool)
    intra = distances[same & off_diagonal]
    inter = distances[~same]
    if intra.size == 0 or inter.size == 0:
        raise ValueError("need both intra- and inter-cluster pairs")
    mean_inter = float(inter.mean())
    if mean_inter == 0:
        raise ValueError("degenerate point set: all points identical")
    return float(intra.mean()) / mean_inter
