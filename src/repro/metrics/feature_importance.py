"""Feature importance (paper eq. 1) and the Fig. 2 inter/intra analysis.

``FI(f)`` is the per-session fraction of (purchased, non-purchased) item
pairs on which feature f alone ranks the purchased item higher, averaged
over sessions — i.e. the session AUC of the raw feature.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import LTRDataset
from .auc import iter_sessions

__all__ = ["feature_importance", "feature_importance_by_category",
           "importance_dispersion"]


def feature_importance(feature_values: np.ndarray, labels: np.ndarray,
                       session_ids: np.ndarray) -> float:
    """Compute FI(f) (eq. 1) over all sessions with both label classes.

    Pairs ``(i_a, i_b)`` with ``y_a = 1, y_b = 0`` are counted within each
    session; the numerator counts pairs where ``f_a > f_b`` (strict, per the
    paper's formula — ties favour neither side).
    """
    total = 0.0
    sessions = 0
    for _, values, session_labels in iter_sessions(session_ids, feature_values, labels):
        positives = values[session_labels == 1]
        negatives = values[session_labels == 0]
        if positives.size == 0 or negatives.size == 0:
            continue
        wins = (positives[:, None] > negatives[None, :]).sum()
        total += wins / (positives.size * negatives.size)
        sessions += 1
    if sessions == 0:
        raise ValueError("no session contains both label classes")
    return float(total / sessions)


def feature_importance_by_category(dataset: LTRDataset, level: str = "tc",
                                   category_ids: list[int] | None = None,
                                   min_sessions: int = 5) -> dict[int, dict[str, float]]:
    """FI(f) for every numeric feature, per category (Fig. 2).

    Parameters
    ----------
    level:
        "tc" groups sessions by query top-category (Fig. 2a);
        "sc" by sub-category (Fig. 2b).
    category_ids:
        Restrict to these ids (e.g. the children of one TC for Fig. 2b).
    min_sessions:
        Skip categories with fewer usable sessions than this.
    """
    if level not in ("tc", "sc"):
        raise ValueError("level must be 'tc' or 'sc'")
    key = dataset.query_tc if level == "tc" else dataset.query_sc
    ids = np.unique(key) if category_ids is None else np.asarray(category_ids)
    result: dict[int, dict[str, float]] = {}
    for cat in ids:
        mask = key == cat
        if not mask.any():
            continue
        subset_sessions = dataset.session_ids[mask]
        labels = dataset.labels[mask]
        # Count usable sessions once.
        usable = 0
        for _, l in iter_sessions(subset_sessions, labels):
            if 0 < l.sum() < l.size:
                usable += 1
        if usable < min_sessions:
            continue
        per_feature: dict[str, float] = {}
        for column, name in enumerate(dataset.spec.numeric_names):
            try:
                per_feature[name] = feature_importance(
                    dataset.numeric[mask][:, column], labels, subset_sessions)
            except ValueError:
                continue
        if per_feature:
            result[int(cat)] = per_feature
    return result


def importance_dispersion(table: dict[int, dict[str, float]]) -> dict[str, float]:
    """Std of FI(f) across categories, per feature.

    The paper's Fig. 2 claim is that this dispersion is large across
    top-categories and small across sibling sub-categories.
    """
    features: dict[str, list[float]] = {}
    for per_feature in table.values():
        for name, value in per_feature.items():
            features.setdefault(name, []).append(value)
    return {name: float(np.std(values)) for name, values in features.items() if len(values) > 1}
