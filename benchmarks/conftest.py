"""Benchmark configuration.

Each bench regenerates one paper table/figure via ``repro.experiments`` and
reports its wall-clock time through pytest-benchmark; the regenerated rows
are attached to ``benchmark.extra_info`` and printed, so a
``pytest benchmarks/ --benchmark-only`` run reproduces the paper's evaluation
section end to end.

Scale is selected with the ``REPRO_BENCH_SCALE`` environment variable
(``ci`` default — minutes for the whole suite; ``default`` — the scale used
for the committed EXPERIMENTS.md numbers; ``paper`` — paper hyper-parameters,
hours).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import SCALES


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "ci")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def attach(benchmark, result) -> None:
    """Record the regenerated table in the benchmark report and print it."""
    text = result.format() if hasattr(result, "format") else str(result)
    benchmark.extra_info["table"] = text
    print()
    print(text)
