"""Bench: regenerate Table 6 (λ1 × λ2 sweep)."""

from repro.experiments import table6

from .conftest import attach, run_once


def test_table6(benchmark, scale):
    result = run_once(benchmark, lambda: table6.run(scale))
    attach(benchmark, result)
    assert len(result.auc) == 9
    values = list(result.auc.values())
    # All grid points train to something sane; the spread across λ settings
    # is small (the paper's table spans ~0.8 AUC points).
    assert min(values) > 0.55
    assert max(values) - min(values) < 0.15
    benchmark.extra_info["best_lambdas"] = result.best_point()
