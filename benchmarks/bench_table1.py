"""Bench: regenerate Table 1 (dataset statistics)."""

from repro.experiments import table1

from .conftest import attach, run_once


def test_table1(benchmark, scale):
    result = run_once(benchmark, lambda: table1.run(scale))
    attach(benchmark, result)
    train_stats, test_stats = result.complete
    # Shape checks mirroring the paper's Table 1: the named slices are
    # strict subsets and the category system is hierarchical.
    assert train_stats.num_examples > test_stats.num_examples
    assert train_stats.num_sub_categories > train_stats.num_top_categories
    for name, (slice_train, _) in result.slices.items():
        assert slice_train.num_examples < train_stats.num_examples, name
