"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each ablation trains the combined model with one paper-specified detail
switched to its naive alternative and reports the AUC delta:

* HSC restricted to the top-K support (eq. 11) vs full support.
* AdvLoss on sigmoid outputs (eq. 12) vs raw logits.
* Noisy top-K gating vs deterministic top-K.
"""

from repro.experiments.common import build_environment, model_config, train_and_eval

from .conftest import run_once


def _auc_with(scale, **config_overrides) -> float:
    env = build_environment(scale)
    config = model_config(scale, **config_overrides)
    metrics = train_and_eval("adv-hsc-moe", env, scale, config=config)
    return metrics["auc"]


def test_ablation_hsc_topk_restriction(benchmark, scale):
    """Eq. 11 sums (p^I - p^C)^2 over the top-K support only."""
    def run():
        return (_auc_with(scale, hsc_restrict_topk=True),
                _auc_with(scale, hsc_restrict_topk=False))
    restricted, full = run_once(benchmark, run)
    benchmark.extra_info["topk_restricted_auc"] = round(restricted, 4)
    benchmark.extra_info["full_support_auc"] = round(full, 4)
    assert restricted > 0.6 and full > 0.6


def test_ablation_adv_on_sigmoid(benchmark, scale):
    """Eq. 12 measures expert distance after the sigmoid."""
    def run():
        return (_auc_with(scale, adv_on_sigmoid=True),
                _auc_with(scale, adv_on_sigmoid=False))
    on_sigmoid, on_logits = run_once(benchmark, run)
    benchmark.extra_info["sigmoid_auc"] = round(on_sigmoid, 4)
    benchmark.extra_info["logits_auc"] = round(on_logits, 4)
    # Raw-logit distances are unbounded; subtracting them from the loss can
    # destabilize training, which is why the paper uses σ(E_i).
    assert on_sigmoid > 0.6


def test_ablation_noisy_gating(benchmark, scale):
    """Shazeer-style noise on the gate logits vs deterministic top-K."""
    def run():
        return (_auc_with(scale, noisy_gating=True),
                _auc_with(scale, noisy_gating=False))
    noisy, deterministic = run_once(benchmark, run)
    benchmark.extra_info["noisy_auc"] = round(noisy, 4)
    benchmark.extra_info["deterministic_auc"] = round(deterministic, 4)
    assert noisy > 0.6 and deterministic > 0.6
