"""Bench: regenerate Table 3 (per-category vs joint training).

Reproduction claims: joint training helps the smallest category the most,
and Joint-Ours (Adv & HSC-MoE) outperforms Joint-DNN overall.
"""

import numpy as np

from repro.experiments import table3

from .conftest import attach, run_once


def test_table3(benchmark, scale):
    result = run_once(benchmark, lambda: table3.run(scale))
    attach(benchmark, result)
    gains = result.joint_gain()
    smallest = min(result.categories, key=result.sizes.get)
    ours = np.mean([result.joint_ours[c] for c in result.categories])
    dnn = np.mean([result.joint_dnn[c] for c in result.categories])
    benchmark.extra_info["joint_gain_smallest"] = round(float(gains[smallest]), 4)
    benchmark.extra_info["joint_ours_minus_joint_dnn"] = round(float(ours - dnn), 4)
    # The paper's orderings (data-poor category gains most from joint
    # training; Joint-Ours > Joint-DNN on every slice) are evaluated on test
    # slices of only 10-40 mixed-label sessions at reduced scale, i.e. an
    # AUC noise floor of ~±0.05-0.10 — far larger than the paper's deltas.
    # They are therefore recorded in extra_info (and discussed per-run in
    # EXPERIMENTS.md) rather than hard-asserted; only sanity is enforced.
    for value in list(result.dedicated.values()) + list(result.joint_dnn.values()):
        assert 0.0 <= value <= 1.0
    assert ours > 0.5
