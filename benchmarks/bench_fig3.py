"""Bench: regenerate Fig. 3 (brand concentration inter vs intra).

Reproduction claims: Electronics-like markets concentrate the top 80% of
sales in far fewer brands than Sports-like markets, and intra-TC variance is
smaller than inter-TC variance.
"""

from repro.experiments import fig3

from .conftest import attach, run_once


def test_fig3(benchmark, scale):
    result = run_once(benchmark, lambda: fig3.run(scale))
    attach(benchmark, result)
    assert result.inter_std() > result.intra_std()
    names = {result.category_names[c]: conc for c, conc in result.inter.items()}
    if "Electronics" in names and "Sports" in names:
        assert names["Electronics"].proportion < names["Sports"].proportion
