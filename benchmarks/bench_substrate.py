"""Micro-benchmarks of the substrates (autograd, data generator, metrics).

Not paper tables — these track the cost of the building blocks so
regressions in the pure-numpy engine are visible.
"""

import numpy as np

from repro import nn
from repro.data import LogConfig, WorldConfig, SyntheticWorld, simulate_log
from repro.hierarchy import default_taxonomy
from repro.metrics import session_auc, session_ndcg


def test_mlp_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    tower = nn.MLP(64, [512, 256], 1, rng=rng)
    x = nn.Tensor(rng.normal(size=(256, 64)))
    y = rng.integers(0, 2, size=(256, 1)).astype(np.float64)

    def step():
        tower.zero_grad()
        loss = nn.losses.bce_with_logits(tower(x), y)
        loss.backward()
        return loss.item()

    result = benchmark(step)
    assert np.isfinite(result)


def test_embedding_lookup_backward(benchmark):
    rng = np.random.default_rng(0)
    table = nn.Embedding(10_000, 16, rng=rng)
    ids = rng.integers(0, 10_000, size=4096)

    def step():
        table.zero_grad()
        out = table(ids)
        out.sum().backward()
        return out.shape

    assert benchmark(step) == (4096, 16)


def test_world_and_log_generation(benchmark):
    taxonomy = default_taxonomy()

    def generate():
        world = SyntheticWorld.generate(taxonomy, WorldConfig(seed=0))
        log = simulate_log(world, LogConfig(seed=1, num_queries=1000))
        return log.num_examples

    examples = benchmark(generate)
    assert examples > 5000


def test_session_metrics(benchmark):
    rng = np.random.default_rng(0)
    n = 50_000
    sessions = np.repeat(np.arange(n // 10), 10)
    labels = (rng.random(n) < 0.1).astype(np.int64)
    scores = rng.random(n)

    def compute():
        return (session_auc(scores, labels, sessions),
                session_ndcg(scores, labels, sessions, k=10))

    auc, ndcg = benchmark(compute)
    assert 0.4 < auc < 0.6
