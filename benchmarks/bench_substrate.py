"""Micro-benchmarks of the substrates (autograd, data generator, metrics).

Not paper tables — these track the cost of the building blocks so
regressions in the pure-numpy engine are visible.  The MLP step benchmark
comes in three flavours so the fast-path speedups are tracked explicitly:

* ``test_mlp_forward_backward``          — fused kernels, float64 (default)
* ``test_mlp_forward_backward_unfused``  — the seed's per-op graph (baseline)
* ``test_mlp_forward_backward_float32``  — fused kernels + float32 fast mode

Acceptance target: fused+float32 >= 1.5x the unfused float64 baseline.

The BiGRU step benchmark mirrors the same three flavours for the recurrent
fast path (fused ``gru_sequence`` kernels vs the per-op reference graph,
float64 vs float32), over a querycat-shaped workload: batch 64, 20
timesteps, ragged lengths, forward + backward through both directions.

Acceptance target: fused f64 >= 3x the per-op float64 baseline.

The packed-vs-masked BiGRU benchmarks compare the packed ragged scan
(sort by length once, per-timestep prefix-only compute) against the
masked fused kernel over two length mixes: uniform (lengths 5..32) and
heavy-ragged (75% short queries of 2..6 tokens, 25% long tails), both
float32 with T=32.

Acceptance target: packed >= 1.5x masked on the heavy-ragged mix.
"""

import numpy as np

from repro import nn
from repro.data import LogConfig, WorldConfig, SyntheticWorld, simulate_log
from repro.hierarchy import default_taxonomy
from repro.metrics import session_auc, session_ndcg


def _unfused_forward(tower, x):
    """The seed's MLP path: one graph node per Linear / ReLU module."""
    for module in tower._items:
        x = module(x)
    return x


def _unfused_bce_with_logits(logits, targets):
    """The seed's 8-node BCE chain (relu/mul/abs/neg/exp/add/log/mean)."""
    targets = nn.as_tensor(targets)
    loss = logits.relu() - logits * targets + (1.0 + (-(logits.abs())).exp()).log()
    return loss.mean()


def _make_tower_and_batch(dtype=np.float64):
    rng = np.random.default_rng(0)
    tower = nn.MLP(64, [512, 256], 1, rng=rng).astype(dtype)
    x = nn.Tensor(rng.normal(size=(256, 64)).astype(dtype))
    y = rng.integers(0, 2, size=(256, 1)).astype(dtype)
    return tower, x, y


def test_mlp_forward_backward(benchmark):
    tower, x, y = _make_tower_and_batch()

    def step():
        tower.zero_grad()
        loss = nn.losses.bce_with_logits(tower(x), y)
        loss.backward()
        return loss.item()

    result = benchmark(step)
    assert np.isfinite(result)


def test_mlp_forward_backward_unfused(benchmark):
    tower, x, y = _make_tower_and_batch()

    def step():
        tower.zero_grad()
        loss = _unfused_bce_with_logits(_unfused_forward(tower, x), y)
        loss.backward()
        return loss.item()

    result = benchmark(step)
    assert np.isfinite(result)


def test_mlp_forward_backward_float32(benchmark):
    tower, x, y = _make_tower_and_batch(np.float32)

    def step():
        tower.zero_grad()
        loss = nn.losses.bce_with_logits(tower(x), y)
        loss.backward()
        return loss.item()

    result = benchmark(step)
    assert np.isfinite(result)
    assert all(p.dtype == np.float32 for p in tower.parameters())


def _make_bigru_and_batch(dtype=np.float64, fused=True):
    """A querycat-shaped recurrent workload: (64, 20, 16) ragged batch."""
    rng = np.random.default_rng(0)
    gru = nn.BiGRU(16, 32, rng=rng, fused=fused)
    if dtype != np.float64:
        gru.astype(dtype)
    x = nn.Tensor(rng.normal(size=(64, 20, 16)).astype(dtype))
    lengths = rng.integers(5, 21, size=64)
    return gru, x, lengths


def _bigru_step(gru, x, lengths):
    gru.zero_grad()
    out = gru(x, lengths=lengths)
    out.sum().backward()
    return out.data


def test_bigru_step(benchmark):
    """Fused recurrent kernels, float64."""
    gru, x, lengths = _make_bigru_and_batch()
    out = benchmark(_bigru_step, gru, x, lengths)
    assert np.isfinite(out).all()


def test_bigru_step_unfused(benchmark):
    """The per-op reference graph (~10 autograd nodes per step per
    direction plus four mask nodes) — the baseline the fused path is
    measured against."""
    gru, x, lengths = _make_bigru_and_batch(fused=False)
    out = benchmark(_bigru_step, gru, x, lengths)
    assert np.isfinite(out).all()


def test_bigru_step_float32(benchmark):
    """Fused recurrent kernels + float32 fast mode."""
    gru, x, lengths = _make_bigru_and_batch(np.float32)
    out = benchmark(_bigru_step, gru, x, lengths)
    assert np.isfinite(out).all()
    assert out.dtype == np.float32
    assert all(p.dtype == np.float32 for p in gru.parameters())


def _make_packed_bigru_batch(packed, mix):
    """A (64, 32, 16) float32 ragged batch for packed-vs-masked runs.

    ``mix="uniform"`` draws lengths 5..32; ``mix="heavy"`` models the
    querycat head/tail split — 75% short queries (2..6 tokens) plus 25%
    long tails — where prefix-only compute pays off most.
    """
    rng = np.random.default_rng(0)
    gru = nn.BiGRU(16, 32, rng=rng, packed=packed).astype(np.float32)
    x = nn.Tensor(rng.normal(size=(64, 32, 16)).astype(np.float32))
    lengths_rng = np.random.default_rng(1)
    if mix == "heavy":
        lengths = np.where(lengths_rng.random(64) < 0.75,
                           lengths_rng.integers(2, 7, size=64),
                           lengths_rng.integers(16, 33, size=64))
        lengths[0] = 32  # keep one full-length row so T is exercised
    else:
        lengths = lengths_rng.integers(5, 33, size=64)
    return gru, x, lengths


def test_bigru_step_masked_heavy_ragged(benchmark):
    """Masked fused kernel on the heavy-ragged mix: every row pays all 32
    timesteps, finished rows ride along under the mask."""
    gru, x, lengths = _make_packed_bigru_batch(packed=False, mix="heavy")
    out = benchmark(_bigru_step, gru, x, lengths)
    assert np.isfinite(out).all()


def test_bigru_step_packed_heavy_ragged(benchmark):
    """Packed scan on the heavy-ragged mix: one argsort, then each
    timestep touches only the still-active prefix.  Measured ≈1.6x the
    masked kernel above (acceptance target ≥1.5x)."""
    gru, x, lengths = _make_packed_bigru_batch(packed=True, mix="heavy")
    out = benchmark(_bigru_step, gru, x, lengths)
    assert np.isfinite(out).all()


def test_bigru_step_masked_uniform(benchmark):
    gru, x, lengths = _make_packed_bigru_batch(packed=False, mix="uniform")
    out = benchmark(_bigru_step, gru, x, lengths)
    assert np.isfinite(out).all()


def test_bigru_step_packed_uniform(benchmark):
    """Uniform lengths still leave ≈40% of the (row, t) grid padded, so
    the packed scan wins ≈1.4x — below the heavy-ragged ratio because
    the active prefix shrinks more slowly."""
    gru, x, lengths = _make_packed_bigru_batch(packed=True, mix="uniform")
    out = benchmark(_bigru_step, gru, x, lengths)
    assert np.isfinite(out).all()


def _make_score_tower(dtype=np.float64):
    rng = np.random.default_rng(0)
    tower = nn.MLP(64, [512, 256], 1, rng=rng)
    if dtype != np.float64:
        tower.astype(dtype)
    return tower


def test_tower_score_single_no_grad(benchmark):
    """Serving baseline: one request (batch 1) through the no_grad Tensor
    forward of the paper's 512x256x1 tower.  Measured ≈60 µs/row (f64)."""
    tower = _make_score_tower()
    x = nn.Tensor(np.random.default_rng(1).normal(size=(1, 64)))

    def score():
        with nn.no_grad():
            return tower(x).data

    assert np.isfinite(benchmark(score)).all()


def test_tower_score_single_compiled(benchmark):
    """One request through the compiled graph-free plan (same tower)."""
    tower = _make_score_tower()
    plan = tower.compiled()
    x = np.random.default_rng(1).normal(size=(1, 64))

    out = benchmark(plan, x)
    assert np.isfinite(out).all()


def test_tower_score_microbatch_compiled(benchmark):
    """A serving micro-batch (32 rows) through the compiled plan.

    This is the configuration ``repro.serving.BatchScorer`` produces under
    concurrent traffic.  Measured ≈10 µs/row f64 (≈5 µs/row f32) vs the
    ≈54 µs/row single-request no_grad baseline — the micro-batched compiled
    path clears the ≥3x acceptance target with ≈5x in float64 alone
    (≈10x in the float32 serving configuration).
    """
    tower = _make_score_tower()
    plan = tower.compiled()
    x = np.random.default_rng(1).normal(size=(32, 64))

    out = benchmark(plan, x)
    assert out.shape == (32, 1) and np.isfinite(out).all()


def test_tower_score_microbatch_compiled_float32(benchmark):
    """The float32 serving configuration of the same micro-batch."""
    tower = _make_score_tower(np.float32)
    plan = tower.compiled()
    x = np.random.default_rng(1).normal(size=(32, 64)).astype(np.float32)

    out = benchmark(plan, x)
    assert out.dtype == np.float32 and np.isfinite(out).all()


def test_tower_score_microbatch_split_prefix_reuse(benchmark):
    """The split plan with a warm item-side prefix (32-row micro-batch).

    48 of the tower's 64 input columns are item-side; with their
    first-layer contribution memoized (``--split-precompute`` steady
    state for repeat items), a request pays only the 16-column
    query-side matmul plus the remaining layers.  Compare against
    ``test_tower_score_microbatch_compiled``: the saving is the static
    3/4 of the first layer's matmul (the 512x256 second layer still
    runs), measured ≈12% per micro-batch on this shape.
    """
    from repro.nn.infer import SplitMLP

    tower = _make_score_tower()
    static = np.arange(48)              # item-side columns
    dynamic = np.arange(48, 64)         # query-side columns
    split = SplitMLP(tower, static, dynamic)
    x = np.random.default_rng(1).normal(size=(32, 64))
    prefix = split.prefix(x[:, static])     # memo-warm: computed once
    x_dynamic = np.ascontiguousarray(x[:, dynamic])

    out = benchmark(split, prefix, x_dynamic)
    np.testing.assert_allclose(out, tower.compiled()(x), atol=1e-10)


def _gru_epoch(gru, tokens_embedded, lengths, batch_size, bucketed):
    """One forward+backward pass over a ragged pool of sequences.

    ``bucketed`` sorts the pool by length and trims every batch to its own
    max length — the serving-relevant half of the length-bucketing
    satellite (the querycat trainer does the same per epoch).
    """
    order = np.argsort(lengths, kind="stable") if bucketed \
        else np.arange(len(lengths))
    total = 0.0
    for start in range(0, len(order), batch_size):
        rows = order[start:start + batch_size]
        batch_lengths = lengths[rows]
        batch = tokens_embedded[rows]
        if bucketed:
            batch = batch[:, :int(batch_lengths.max())]
        gru.zero_grad()
        out = gru(nn.Tensor(batch), lengths=batch_lengths)
        out.sum().backward()
        total += float(out.data.sum())
    return total


def _make_ragged_pool():
    """A querycat-shaped pool: 256 sequences, lengths 2..20, dim 16."""
    rng = np.random.default_rng(0)
    gru = nn.BiGRU(16, 32, rng=rng)
    pool = rng.normal(size=(256, 20, 16))
    lengths = rng.integers(2, 21, size=256)
    return gru, pool, lengths


def test_bigru_epoch_unbucketed(benchmark):
    """Baseline: arbitrary batch composition, every batch padded to T=20.
    Measured ≈78 ms vs ≈50 ms for the bucketed epoch below (≈1.6x) — the
    trimmed scan runs 55 timesteps instead of 80 and skips most masks."""
    gru, pool, lengths = _make_ragged_pool()
    result = benchmark(_gru_epoch, gru, pool, lengths, 64, False)
    assert np.isfinite(result)


def test_bigru_epoch_bucketed(benchmark):
    """Length-bucketed batches trimmed to their own max length: the GRU
    scan runs fewer timesteps and skips almost all masked steps."""
    gru, pool, lengths = _make_ragged_pool()
    result = benchmark(_gru_epoch, gru, pool, lengths, 64, True)
    assert np.isfinite(result)


def test_adamw_step_float64_vs_inplace(benchmark):
    """In-place AdamW update over paper-sized parameters."""
    rng = np.random.default_rng(0)
    tower = nn.MLP(64, [512, 256], 1, rng=rng)
    params = list(tower.parameters())
    optimizer = nn.optim.AdamW(params, lr=1e-4)
    for p in params:
        p.grad = rng.normal(size=p.shape)

    def step():
        optimizer.step()
        return optimizer.step_count

    assert benchmark(step) > 0


def test_embedding_lookup_backward(benchmark):
    rng = np.random.default_rng(0)
    table = nn.Embedding(10_000, 16, rng=rng)
    ids = rng.integers(0, 10_000, size=4096)

    def step():
        table.zero_grad()
        out = table(ids)
        out.sum().backward()
        return out.shape

    assert benchmark(step) == (4096, 16)


def test_world_and_log_generation(benchmark):
    taxonomy = default_taxonomy()

    def generate():
        world = SyntheticWorld.generate(taxonomy, WorldConfig(seed=0))
        log = simulate_log(world, LogConfig(seed=1, num_queries=1000))
        return log.num_examples

    examples = benchmark(generate)
    assert examples > 5000


def test_session_metrics(benchmark):
    rng = np.random.default_rng(0)
    n = 50_000
    sessions = np.repeat(np.arange(n // 10), 10)
    labels = (rng.random(n) < 0.1).astype(np.int64)
    scores = rng.random(n)

    def compute():
        return (session_auc(scores, labels, sessions),
                session_ndcg(scores, labels, sessions, k=10))

    auc, ndcg = benchmark(compute)
    assert 0.4 < auc < 0.6
