"""Bench: regenerate Fig. 2 (feature importance inter vs intra categories).

Reproduction claim: FI dispersion across top-categories exceeds the
dispersion across sibling sub-categories (the paper's §3 motivation).
"""

from repro.experiments import fig2

from .conftest import attach, run_once


def test_fig2(benchmark, scale):
    result = run_once(benchmark, lambda: fig2.run(scale))
    attach(benchmark, result)
    ratio = result.mean_dispersion_ratio()
    benchmark.extra_info["inter_over_intra_dispersion"] = round(ratio, 3)
    if scale.name != "ci":
        # Needs enough sessions per sub-category for tight FI estimates.
        assert ratio > 1.0
    else:
        assert ratio > 0.5
    # The named-category narrative: comments matter more in Clothing than in
    # Electronics; sales the other way around.
    names = {v: k for k, v in result.category_names.items() if isinstance(k, int)}
    by_name = {}
    for cat_id, row in result.inter.items():
        by_name[result.category_names[cat_id]] = row
    if "Clothing" in by_name and "Electronics" in by_name:
        assert (by_name["Clothing"]["good_comments_ratio"]
                > by_name["Electronics"]["good_comments_ratio"] - 0.05)
