"""Bench: regenerate Table 2 (the 7-model comparison).

Reproduction claims checked (shape, not absolute values):
* every MoE-based model beats the DNN baseline on AUC;
* the combined Adv & HSC-MoE is the best MoE variant.
At CI scale these orderings are noisy, so hard assertions are limited to
"models learn"; the orderings are recorded in extra_info and enforced at
DEFAULT scale in EXPERIMENTS.md.
"""

from repro.experiments import table2

from .conftest import attach, run_once


def test_table2(benchmark, scale):
    result = run_once(benchmark, lambda: table2.run(scale))
    attach(benchmark, result)
    assert set(result.metrics) == {"dnn", "moe", "4-mmoe", "10-mmoe",
                                   "adv-moe", "hsc-moe", "adv-hsc-moe"}
    for name, metrics in result.metrics.items():
        assert metrics["auc"] > 0.6, f"{name} failed to learn"
    gains = result.improvement_over_dnn("auc")
    benchmark.extra_info["auc_gain_over_dnn"] = {k: round(v, 4) for k, v in gains.items()}
    if scale.name != "ci":
        # The robust half of the paper's headline: gated mixture models beat
        # the DNN baseline.  The fine ordering among MoE variants (the
        # paper's 0.02-0.5% deltas) is below the reduced-scale noise floor —
        # see EXPERIMENTS.md — so the combined model is only required to sit
        # within that floor of the baseline.
        assert max(gains.values()) > 0
        assert gains["adv-hsc-moe"] > -0.01
