"""Serving-layer benchmarks: single-request latency and micro-batched throughput.

Tracks the two numbers that matter for the production story:

* **single-request latency** — one candidate batch through ``model.score``
  (the compiled graph-free plan) vs the no_grad Tensor ``model.predict``
  reference, and end to end through :meth:`RankingService.rank` including
  querycat intent classification.
* **micro-batched throughput** — many concurrent single-session requests
  drained through :class:`repro.serving.BatchScorer`, which coalesces them
  into a few model invocations (≈54 µs/row at batch 1 vs ≈10 µs/row at
  batch 32 on the paper tower, f64).

Scale comes from ``REPRO_BENCH_SCALE`` (see conftest); models are built
untrained — scoring cost does not depend on the weight values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.experiments.common import build_environment, model_config
from repro.models import build_model
from repro.querycat import QueryCategoryClassifier, QueryClassifierConfig
from repro.serving import BatchScorer, ModelRegistry, RankingService


@pytest.fixture(scope="module")
def served(scale):
    """(environment, ranking model, classifier) at the bench scale."""
    env = build_environment(scale)
    with nn.default_dtype(scale.np_dtype):
        model = build_model("adv-hsc-moe", env.dataset.spec, env.taxonomy,
                            model_config(scale), train_dataset=env.train)
        classifier = QueryCategoryClassifier(
            env.log.queries.vocab_size, env.taxonomy.max_sc_id() + 1,
            QueryClassifierConfig(embedding_dim=8, hidden_size=12))
    dataset = env.dataset.astype(scale.np_dtype)
    return env, dataset, model, classifier


def test_single_request_predict(benchmark, served):
    """Baseline: one 8-candidate session through the no_grad Tensor path."""
    _, dataset, model, _ = served
    batch = dataset.batch(np.arange(8))
    scores = benchmark(model.predict, batch)
    assert scores.shape == (8,)


def test_single_request_score(benchmark, served):
    """One 8-candidate session through the compiled scoring plan."""
    _, dataset, model, _ = served
    batch = dataset.batch(np.arange(8))
    scores = benchmark(model.score, batch)
    assert scores.shape == (8,)


def test_single_request_service_rank(benchmark, served):
    """End to end: intent classification + routing + scoring + top-k."""
    env, dataset, model, classifier = served
    registry = ModelRegistry()
    registry.register("ranker", model)
    batch = dataset.batch(np.arange(8))
    tokens = env.log.queries.tokens[0]
    lengths = env.log.queries.lengths[0]
    with RankingService(registry, default_model="ranker", classifier=classifier,
                        taxonomy=env.taxonomy, max_wait_ms=0.0) as service:
        response = benchmark(service.rank, batch, query_tokens=tokens,
                             query_lengths=lengths, top_k=5)
        benchmark.extra_info["stats"] = str(service.stats())
    assert len(response.indices) == 5


def test_microbatched_throughput(benchmark, served):
    """64 concurrent 4-row requests drained through the BatchScorer.

    The scorer coalesces them into a handful of model invocations; the
    interesting number is rows/second versus the single-request bench.
    """
    _, dataset, model, _ = served
    requests = [dataset.batch(np.arange(i, i + 4)) for i in range(64)]

    with BatchScorer(model.score, max_batch_rows=256, max_wait_ms=2.0) as scorer:
        def drain():
            futures = [scorer.submit(batch) for batch in requests]
            return [future.result() for future in futures]

        results = benchmark(drain)
        stats = scorer.stats()
        benchmark.extra_info["mean_batch_rows"] = stats.mean_batch_rows
        benchmark.extra_info["throughput_rows_per_s"] = stats.throughput_rows_per_s
    assert len(results) == 64
    assert stats.mean_batch_rows > 4.0  # coalescing happened


def test_sequential_scoring_throughput(benchmark, served):
    """The same 256 rows scored as one batch (upper bound, no queueing)."""
    _, dataset, model, _ = served
    batch = dataset.batch(np.arange(256))
    scores = benchmark(model.score, batch)
    assert scores.shape == (256,)
