"""Serving-layer benchmarks: single-request latency and micro-batched throughput.

Tracks the two numbers that matter for the production story:

* **single-request latency** — one candidate batch through ``model.score``
  (the compiled graph-free plan) vs the no_grad Tensor ``model.predict``
  reference, and end to end through :meth:`RankingService.rank` including
  querycat intent classification.
* **micro-batched throughput** — many concurrent single-session requests
  drained through :class:`repro.serving.BatchScorer`, which coalesces them
  into a few model invocations (≈54 µs/row at batch 1 vs ≈10 µs/row at
  batch 32 on the paper tower, f64).
* **over-the-wire multi-client throughput** — closed-loop clients hammering
  a real :class:`ServingServer` over HTTP, single-worker ``BatchScorer``
  semantics (``num_workers=1``) vs a 4-worker :class:`ScorerPool`.  The
  pool overlaps the coalescing waits (and, on multi-core BLAS, the
  scoring) of concurrent micro-batches; the PR 4 acceptance number is the
  pool:single throughput ratio at batchable load.
* **connection scaling** — the same closed-loop load at 1 → 256 concurrent
  keep-alive sockets, selector vs threaded backend (the PR 5 tentpole
  comparison: the event loop holds hundreds of connections without a
  thread each, at zero errors).
* **micro-batch cap policy** — a static ``max_batch_rows`` sweep vs the
  adaptive backlog-driven cap on the pool; the adaptive point must land
  within 10% of the best hand-tuned static cap with no tuning.
* **int8 quantized plans** — single-request and micro-batch scoring
  through the quantized compiled plan vs the f32 plan on a tower large
  enough that f32 weights stream from memory (PR 10: the win is the 4x
  smaller weight stream, so it is largest at batch 1).

Scale comes from ``REPRO_BENCH_SCALE`` (see conftest); models are built
untrained — scoring cost does not depend on the weight values.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.experiments.common import build_environment, model_config
from repro.models import build_model
from repro.querycat import QueryCategoryClassifier, QueryClassifierConfig
from repro.serving import (BatchScorer, ModelRegistry, RankingService,
                           ResultCache, ServingClient, ServingError,
                           ServingServer, latency_percentile, run_load,
                           save_checkpoint, save_environment,
                           serve_from_directory)


@pytest.fixture(scope="module")
def served(scale):
    """(environment, ranking model, classifier) at the bench scale."""
    env = build_environment(scale)
    with nn.default_dtype(scale.np_dtype):
        model = build_model("adv-hsc-moe", env.dataset.spec, env.taxonomy,
                            model_config(scale), train_dataset=env.train)
        classifier = QueryCategoryClassifier(
            env.log.queries.vocab_size, env.taxonomy.max_sc_id() + 1,
            QueryClassifierConfig(embedding_dim=8, hidden_size=12))
    dataset = env.dataset.astype(scale.np_dtype)
    return env, dataset, model, classifier


def test_single_request_predict(benchmark, served):
    """Baseline: one 8-candidate session through the no_grad Tensor path."""
    _, dataset, model, _ = served
    batch = dataset.batch(np.arange(8))
    scores = benchmark(model.predict, batch)
    assert scores.shape == (8,)


def test_single_request_score(benchmark, served):
    """One 8-candidate session through the compiled scoring plan."""
    _, dataset, model, _ = served
    batch = dataset.batch(np.arange(8))
    scores = benchmark(model.score, batch)
    assert scores.shape == (8,)


def test_single_request_service_rank(benchmark, served):
    """End to end: intent classification + routing + scoring + top-k."""
    env, dataset, model, classifier = served
    registry = ModelRegistry()
    registry.register("ranker", model)
    batch = dataset.batch(np.arange(8))
    tokens = env.log.queries.tokens[0]
    lengths = env.log.queries.lengths[0]
    with RankingService(registry, default_model="ranker", classifier=classifier,
                        taxonomy=env.taxonomy, max_wait_ms=0.0) as service:
        response = benchmark(service.rank, batch, query_tokens=tokens,
                             query_lengths=lengths, top_k=5)
        benchmark.extra_info["stats"] = str(service.stats())
    assert len(response.indices) == 5


def test_microbatched_throughput(benchmark, served):
    """64 concurrent 4-row requests drained through the BatchScorer.

    The scorer coalesces them into a handful of model invocations; the
    interesting number is rows/second versus the single-request bench.
    """
    _, dataset, model, _ = served
    requests = [dataset.batch(np.arange(i, i + 4)) for i in range(64)]

    with BatchScorer(model.score, max_batch_rows=256, max_wait_ms=2.0) as scorer:
        def drain():
            futures = [scorer.submit(batch) for batch in requests]
            return [future.result() for future in futures]

        results = benchmark(drain)
        stats = scorer.stats()
        benchmark.extra_info["mean_batch_rows"] = stats.mean_batch_rows
        benchmark.extra_info["throughput_rows_per_s"] = stats.throughput_rows_per_s
    assert len(results) == 64
    assert stats.mean_batch_rows > 4.0  # coalescing happened


def test_sequential_scoring_throughput(benchmark, served):
    """The same 256 rows scored as one batch (upper bound, no queueing)."""
    _, dataset, model, _ = served
    batch = dataset.batch(np.arange(256))
    scores = benchmark(model.score, batch)
    assert scores.shape == (256,)


# ----------------------------------------------------------------------
# Over-the-wire: HTTP gateway under closed-loop multi-client load
# ----------------------------------------------------------------------
_WIRE_CLIENTS = 6
_WIRE_REQUESTS_EACH = 10
_WIRE_ROWS = 8


def _drain_over_wire(url: str, dataset, clients: int, requests_each: int,
                     rows: int):
    """Closed-loop drain: each client thread sends its requests back to
    back over HTTP.  Returns (elapsed_s, latencies, errors)."""
    batches = [dataset.batch(np.arange(i, i + rows)) for i in range(clients)]
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients

    def worker(index: int) -> None:
        client = ServingClient(url)
        batch = batches[index]
        for _ in range(requests_each):
            t0 = time.monotonic()
            try:
                client.rank(batch.numeric, batch.sparse, top_k=5)
            except Exception:
                errors[index] += 1
                continue
            latencies[index].append(time.monotonic() - t0)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return elapsed, [s for bucket in latencies for s in bucket], sum(errors)


def _bench_wire(benchmark, served, num_workers: int) -> None:
    """Boot a gateway with an N-worker pool and benchmark the full drain.

    ``num_workers=1`` reproduces the PR 3 single-worker ``BatchScorer``
    service; both configurations keep the default 2 ms coalescing wait, so
    the comparison isolates the pool (overlapped micro-batch windows),
    not a retuned knob.
    """
    _, dataset, model, _ = served
    registry = ModelRegistry()
    registry.register("ranker", model)
    service = RankingService(registry, default_model="ranker",
                             num_workers=num_workers)
    last = {}
    with ServingServer(service, port=0) as server:
        server.start()
        probe = ServingClient(server.url)
        probe.wait_ready(timeout_s=30)
        warmup = dataset.batch(np.arange(_WIRE_ROWS))
        probe.rank(warmup.numeric, warmup.sparse)   # compile plans off-clock

        def drain():
            elapsed, latencies, errors = _drain_over_wire(
                server.url, dataset, _WIRE_CLIENTS, _WIRE_REQUESTS_EACH,
                _WIRE_ROWS)
            assert errors == 0
            last["elapsed"] = elapsed
            last["latencies"] = latencies
            return latencies

        latencies = benchmark(drain)
        pool_stats = service.stats()["ranker:v1"]
    total_rows = _WIRE_CLIENTS * _WIRE_REQUESTS_EACH * _WIRE_ROWS
    samples = np.asarray(last["latencies"])
    benchmark.extra_info["num_workers"] = num_workers
    benchmark.extra_info["rows_per_s"] = total_rows / last["elapsed"]
    benchmark.extra_info["requests_per_s"] = len(samples) / last["elapsed"]
    benchmark.extra_info["p50_ms"] = latency_percentile(samples, 50) * 1000
    benchmark.extra_info["p95_ms"] = latency_percentile(samples, 95) * 1000
    benchmark.extra_info["mean_batch_rows"] = pool_stats.mean_batch_rows
    assert len(latencies) == _WIRE_CLIENTS * _WIRE_REQUESTS_EACH


def test_http_multiclient_single_worker(benchmark, served):
    """Baseline: the gateway scoring through one worker (PR 3 semantics)."""
    _bench_wire(benchmark, served, num_workers=1)


def test_http_multiclient_pool4(benchmark, served):
    """4-worker ScorerPool under the same closed-loop multi-client load.

    On a single-core host the win over the single worker is the pipeline
    (the collector's coalescing wait overlaps the other workers' scoring);
    the scoring compute itself cannot parallelize without more cores — see
    the ``parallel_scoring`` pair below for that axis.
    """
    _bench_wire(benchmark, served, num_workers=4)


class _ParallelScoringModel:
    """Stand-in for a model whose scoring runs outside the GIL.

    Real compiled scoring spends its time in BLAS matmuls, which release
    the GIL — on a multi-core host four workers' batches genuinely
    overlap.  The benchmark container is single-core, so this proxy makes
    the overlap measurable anyway: a per-row ``time.sleep`` occupies the
    scorer exactly like a matmul running on an otherwise-idle core would,
    sized to a production-scale tower (0.5 ms/row — large enough that
    scoring, not HTTP/JSON overhead, dominates the request cost, which is
    the regime where a scorer pool matters in the first place).
    """

    def __init__(self, delay_per_row_s: float = 0.0005):
        self._delay_per_row_s = delay_per_row_s

    def make_scorer(self):
        def score(batch):
            time.sleep(self._delay_per_row_s * len(batch))
            return np.zeros(len(batch))
        return score

    def score(self, batch):
        return self.make_scorer()(batch)


def _bench_wire_parallel_scoring(benchmark, served, num_workers: int) -> None:
    """Wire bench against the GIL-releasing proxy model.

    ``max_batch_rows=16`` caps micro-batches at two requests, so the
    closed-loop load forms several batches per round instead of one
    pool-starving mega-batch — with parallel scoring you split work
    across workers (per-device batch caps, as in GPU serving).  The
    simulated compute is proportional to rows, so the cap leaves the
    single worker's total scoring time unchanged: the pool's gain is
    overlap alone.
    """
    _, dataset, _, _ = served
    registry = ModelRegistry()
    registry.register("ranker", _ParallelScoringModel())
    service = RankingService(registry, default_model="ranker",
                             num_workers=num_workers, max_batch_rows=16)
    last = {}
    with ServingServer(service, port=0) as server:
        server.start()
        probe = ServingClient(server.url)
        probe.wait_ready(timeout_s=30)

        def drain():
            elapsed, latencies, errors = _drain_over_wire(
                server.url, dataset, _WIRE_CLIENTS, _WIRE_REQUESTS_EACH,
                _WIRE_ROWS)
            assert errors == 0
            last["elapsed"] = elapsed
            return latencies

        latencies = benchmark(drain)
    total_rows = _WIRE_CLIENTS * _WIRE_REQUESTS_EACH * _WIRE_ROWS
    benchmark.extra_info["num_workers"] = num_workers
    benchmark.extra_info["rows_per_s"] = total_rows / last["elapsed"]
    assert len(latencies) == _WIRE_CLIENTS * _WIRE_REQUESTS_EACH


def test_http_parallel_scoring_single_worker(benchmark, served):
    """GIL-releasing scorer (multi-core proxy), one worker."""
    _bench_wire_parallel_scoring(benchmark, served, num_workers=1)


def test_http_parallel_scoring_pool4(benchmark, served):
    """GIL-releasing scorer (multi-core proxy), 4-worker pool.

    This pair records the PR 4 acceptance ratio for hosts where scoring
    parallelizes: the pool keeps 4 micro-batches in flight, so throughput
    scales toward 4x the single worker."""
    _bench_wire_parallel_scoring(benchmark, served, num_workers=4)


# ----------------------------------------------------------------------
# Overload shedding: bounded admission keeps served latency flat
# ----------------------------------------------------------------------
def test_http_overload_shedding(benchmark, served):
    """Gateway driven past capacity with a tight admission bound.

    16 closed-loop clients against a single slow worker whose backlog is
    capped at 64 rows: most requests are shed with 429.  The measurement
    behind the self-protection claim — the latency of *served* requests
    stays near the unloaded service time (bounded queue → bounded wait),
    instead of growing with however much traffic arrives, and refusals
    cost the gateway almost nothing.  Shed count and served p99 are
    recorded as artifact data.
    """
    _, dataset, _, _ = served
    registry = ModelRegistry()
    registry.register("ranker", _ParallelScoringModel())
    service = RankingService(registry, default_model="ranker", num_workers=1,
                             max_batch_rows=16, max_backlog_rows=64)
    clients, requests_each, rows = 16, 12, 8
    last = {}
    with ServingServer(service, port=0) as server:
        server.start()
        probe = ServingClient(server.url)
        probe.wait_ready(timeout_s=30)

        def drain():
            batches = [dataset.batch(np.arange(i, i + rows))
                       for i in range(clients)]
            latencies: list[list[float]] = [[] for _ in range(clients)]
            sheds = [0] * clients

            def worker(index: int) -> None:
                client = ServingClient(server.url)
                for _ in range(requests_each):
                    t0 = time.monotonic()
                    try:
                        client.rank(batches[index].numeric,
                                    batches[index].sparse, top_k=5)
                    except ServingError as error:
                        assert error.status == 429  # only clean sheds
                        sheds[index] += 1
                        continue
                    latencies[index].append(time.monotonic() - t0)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(clients)]
            started = time.monotonic()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            last["elapsed"] = time.monotonic() - started
            last["sheds"] = sum(sheds)
            return [s for bucket in latencies for s in bucket]

        latencies = benchmark.pedantic(drain, rounds=1, iterations=1,
                                       warmup_rounds=0)
    served_count = len(latencies)
    assert served_count + last["sheds"] == clients * requests_each
    assert served_count > 0
    samples = np.asarray(latencies)
    benchmark.extra_info["served"] = served_count
    benchmark.extra_info["shed"] = last["sheds"]
    benchmark.extra_info["shed_fraction"] = \
        last["sheds"] / (clients * requests_each)
    benchmark.extra_info["served_p99_ms"] = \
        latency_percentile(samples, 99) * 1000
    benchmark.extra_info["rps"] = served_count / last["elapsed"]


# ----------------------------------------------------------------------
# Result cache: hit vs miss latency, zipfian vs uniform throughput
# ----------------------------------------------------------------------
_CACHE_ROWS = 64        # candidate set size: a miss must pay real scoring


@pytest.fixture(scope="module")
def paper_served(scale):
    """Environment + a paper-sized (512x256 expert) ranker.

    The result cache matters in the regime where scoring dominates the
    request cost; the smoke-scale model underplays a miss (scoring a
    tiny tower costs about as much as the HTTP framing a hit still
    pays), so the cache benches score through the paper's largest
    configuration — 512x256 expert towers at the fig. 7 grid's 32
    experts — at every bench scale.
    """
    env = build_environment(scale)
    with nn.default_dtype(scale.np_dtype):
        model = build_model(
            "adv-hsc-moe", env.dataset.spec, env.taxonomy,
            model_config(scale).with_updates(hidden_sizes=(512, 256),
                                             num_experts=32),
            train_dataset=env.train)
    return env, env.dataset.astype(scale.np_dtype), model


def _cached_gateway(paper_served, cached: bool) -> ServingServer:
    env, _, model = paper_served
    registry = ModelRegistry()
    registry.register("ranker", model)
    service = RankingService(
        registry, default_model="ranker", num_workers=2,
        result_cache=ResultCache(max_entries=4096, ttl_s=None)
        if cached else None)
    return ServingServer(service, port=0, spec=env.dataset.spec)


def test_http_cache_hit_vs_miss_latency(benchmark, paper_served):
    """Over-the-wire p50 of a cache hit vs a scored (miss) request.

    The PR 8 acceptance measurement: a hit skips classification, the
    scorer pool (and its coalescing wait), and the model entirely —
    HTTP framing, JSON, one dict lookup, one argsort.  The miss p50 is
    measured off-clock with per-request unique payloads (every request
    scores); the benchmarked drain is 30 repeats of one warm payload
    (every request hits).  Measured ≈1.1 ms hit vs ≈13.4 ms miss
    (ratio ≈0.08) — under the ≤10% acceptance target.
    """
    _, dataset, _ = paper_served
    repeats = 30
    with _cached_gateway(paper_served, cached=True) as server:
        server.start()
        client = ServingClient(server.url)
        client.wait_ready(timeout_s=30)
        warm = dataset.batch(np.arange(_CACHE_ROWS))
        client.rank(warm.numeric, warm.sparse)      # compile + fill the entry

        miss_latencies = []
        for i in range(repeats):
            unique = dataset.batch(np.arange(i + 1, i + 1 + _CACHE_ROWS))
            t0 = time.monotonic()
            client.rank(unique.numeric, unique.sparse, top_k=5)
            miss_latencies.append(time.monotonic() - t0)

        def drain_hits():
            latencies = []
            for _ in range(repeats):
                t0 = time.monotonic()
                result = client.rank(warm.numeric, warm.sparse, top_k=5)
                latencies.append(time.monotonic() - t0)
                assert result["cached"] is True
            return latencies

        hit_latencies = benchmark.pedantic(drain_hits, rounds=1,
                                           iterations=1, warmup_rounds=0)
    hit_p50 = latency_percentile(np.asarray(hit_latencies), 50)
    miss_p50 = latency_percentile(np.asarray(miss_latencies), 50)
    benchmark.extra_info["hit_p50_ms"] = hit_p50 * 1000
    benchmark.extra_info["miss_p50_ms"] = miss_p50 * 1000
    benchmark.extra_info["hit_to_miss_ratio"] = hit_p50 / miss_p50
    assert hit_p50 < 0.5 * miss_p50


def _zipf_throughput(paper_served, cached: bool) -> float:
    """Requests/s of a 3s zipfian (s=1.0, 64 keys) closed-loop run."""
    with _cached_gateway(paper_served, cached) as server:
        server.start()
        summary = run_load(server.url, duration_s=3.0, clients=6,
                           rows_per_request=_CACHE_ROWS, top_k=5,
                           zipf_s=1.0, zipf_universe=64)
        assert summary.errors == 0
        return summary.rps


def test_http_zipf_cached_vs_uncached_throughput(benchmark, paper_served):
    """Zipfian workload throughput, result cache on vs off.

    The skew-1.0 workload concentrates most requests on a handful of
    keys; with the cache on those answer without scoring, so the same
    gateway serves a multiple of the uncached request rate.  The PR 8
    acceptance ratio (target >= 2x at skew 1.0) is recorded as
    ``cached_to_uncached_ratio``; measured ≈6.8x.
    """
    uncached_rps = _zipf_throughput(paper_served, cached=False)

    def cached_run():
        return _zipf_throughput(paper_served, cached=True)

    cached_rps = benchmark.pedantic(cached_run, rounds=1, iterations=1,
                                    warmup_rounds=0)
    benchmark.extra_info["cached_rps"] = cached_rps
    benchmark.extra_info["uncached_rps"] = uncached_rps
    benchmark.extra_info["cached_to_uncached_ratio"] = \
        cached_rps / uncached_rps
    assert cached_rps > 1.5 * uncached_rps


# ----------------------------------------------------------------------
# Connection scaling: selector vs threaded backend, 1 → 256 sockets
# ----------------------------------------------------------------------
_SCALING_TOTAL_REQUESTS = 512           # fixed work per step, any concurrency


@pytest.mark.parametrize("backend", ["selector", "threaded"])
@pytest.mark.parametrize("clients", [1, 8, 64, 256])
def test_http_connection_scaling(benchmark, served, backend, clients):
    """Closed-loop keep-alive clients at growing connection counts.

    The PR 5 acceptance sweep: the selector backend must hold 256
    concurrent sockets with zero errors at throughput no worse than the
    threaded backend's 6-client regime, without a thread per connection.
    The total request count is fixed, so each step's wall clock measures
    per-connection overhead, not extra work.
    """
    _, dataset, model, _ = served
    registry = ModelRegistry()
    registry.register("ranker", model)
    service = RankingService(registry, default_model="ranker", num_workers=4)
    requests_each = max(1, _SCALING_TOTAL_REQUESTS // clients)
    last = {}
    with ServingServer(service, port=0, backend=backend) as server:
        server.start()
        probe = ServingClient(server.url)
        probe.wait_ready(timeout_s=30)
        warmup = dataset.batch(np.arange(_WIRE_ROWS))
        probe.rank(warmup.numeric, warmup.sparse)   # compile plans off-clock

        def drain():
            elapsed, latencies, errors = _drain_over_wire(
                server.url, dataset, clients, requests_each, _WIRE_ROWS)
            last.update(elapsed=elapsed, latencies=latencies, errors=errors)
            return latencies

        # One timed round per step: a 256-thread drain is itself a long
        # operation, and the sweep's shape matters more than its noise.
        latencies = benchmark.pedantic(drain, rounds=1, iterations=1,
                                       warmup_rounds=0)
    # Zero errors at every connection count is the *selector* acceptance
    # gate.  The threaded backend is expected to degrade at high socket
    # counts (that is the motivation for the event loop); its error count
    # is recorded as data instead.
    if backend == "selector":
        assert last["errors"] == 0, \
            f"{last['errors']} errors at {clients} clients"
    assert len(latencies) == clients * requests_each - last["errors"]
    samples = np.asarray(last["latencies"])
    total_rows = clients * requests_each * _WIRE_ROWS
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["clients"] = clients
    benchmark.extra_info["errors"] = last["errors"]
    benchmark.extra_info["rows_per_s"] = total_rows / last["elapsed"]
    benchmark.extra_info["p50_ms"] = latency_percentile(samples, 50) * 1000
    benchmark.extra_info["p95_ms"] = latency_percentile(samples, 95) * 1000


# ----------------------------------------------------------------------
# Adaptive vs static micro-batch caps on the ScorerPool
# ----------------------------------------------------------------------
_CAP_REQUESTS = 96
_CAP_ROWS = 8
_CAP_SUBMITTERS = 4
_CAP_DELAY_PER_ROW_S = 0.00025


def _bench_pool_cap(benchmark, served, adaptive: bool,
                    max_batch_rows: int) -> None:
    """Drain a concurrent burst through a 4-worker pool under one cap
    policy, with the GIL-releasing proxy scorer (the regime where the
    per-worker cap matters: scoring parallelizes, so how the backlog is
    split across workers decides the wall clock — per-device batch caps,
    as in GPU serving).  The sweep over static caps brackets the
    hand-tuned optimum; the adaptive run must land within 10% of the best
    static point with no tuning — the PR 5 acceptance comparison.

    (With GIL-bound single-core scoring the comparison is degenerate:
    one mega-batch is always best because splitting cannot buy
    parallelism, so "hand-tuning" would just pick the maximum.  The
    compute-bound batching win itself is pinned by
    ``test_microbatched_throughput``.)
    """
    from concurrent.futures import ThreadPoolExecutor

    _, dataset, _, _ = served
    requests = [dataset.batch(np.arange(i % 64, i % 64 + _CAP_ROWS))
                for i in range(_CAP_REQUESTS)]
    proxy = _ParallelScoringModel(_CAP_DELAY_PER_ROW_S)
    from repro.serving import ScorerPool

    with ScorerPool(proxy.make_scorer, num_workers=4,
                    max_batch_rows=max_batch_rows, max_wait_ms=2.0,
                    adaptive_batch=adaptive) as pool:
        def drain():
            with ThreadPoolExecutor(max_workers=_CAP_SUBMITTERS) as executor:
                futures = list(executor.map(pool.submit, requests))
            return [future.result(timeout=60) for future in futures]

        results = benchmark(drain)
        stats = pool.stats()
    assert len(results) == _CAP_REQUESTS
    benchmark.extra_info["adaptive"] = adaptive
    benchmark.extra_info["max_batch_rows"] = max_batch_rows
    benchmark.extra_info["mean_batch_rows"] = stats.mean_batch_rows
    benchmark.extra_info["throughput_rows_per_s"] = stats.throughput_rows_per_s


@pytest.mark.parametrize("cap", [8, 32, 64, 128, 256])
def test_pool_static_cap_sweep(benchmark, served, cap):
    """Hand-tuned static ``max_batch_rows`` sweep (the tuning the
    adaptive policy is meant to make unnecessary).  768 rows across 4
    workers: small caps over-fragment (per-batch overhead), large caps
    starve workers (one mega-batch scores serially); the optimum sits
    in between and depends on load — exactly what a config knob gets
    wrong as traffic shifts."""
    _bench_pool_cap(benchmark, served, adaptive=False, max_batch_rows=cap)


def test_pool_adaptive_cap(benchmark, served):
    """Adaptive policy, default clamps — no per-deployment tuning."""
    _bench_pool_cap(benchmark, served, adaptive=True, max_batch_rows=256)


# ----------------------------------------------------------------------
# Multi-process scorer scaling (PR 9)
# ----------------------------------------------------------------------
_PROC_CLIENTS = 8
_PROC_REQUESTS_EACH = 4
_PROC_ROWS = 64


@pytest.fixture(scope="module")
def process_gateway_dir(paper_served, tmp_path_factory):
    """Checkpoint directory for the paper-sized ranker (the regime where
    scoring — BLAS, GIL-released — dominates the request cost)."""
    env, dataset, model = paper_served
    directory = tmp_path_factory.mktemp("proc-scaling-ckpts")
    save_environment(directory, dataset.spec, env.taxonomy)
    save_checkpoint(model, directory / "ranker", "adv-hsc-moe")
    return directory


def _bench_process_scaling(benchmark, paper_served, directory,
                           scorer_processes: int) -> None:
    """Closed-loop drain through ``--scorer-processes N``.

    ``scorer_processes=0`` is the in-process 2-worker pool baseline; with
    N > 0 the pool binds one worker thread per scorer process, so the
    sweep isolates the process boundary (frame codec + pipe hop + true
    multi-core scoring) against identical micro-batching.  The PR 9
    acceptance number is rows/s at 2 processes ≥ 1.7× the baseline on a
    multi-core host; single-core CI runs record the overhead instead.
    """
    _, dataset, _ = paper_served
    last = {}
    server = serve_from_directory(directory, port=0, num_workers=2,
                                  max_wait_ms=0.5,
                                  scorer_processes=scorer_processes)
    try:
        server.start()
        probe = ServingClient(server.url)
        probe.wait_ready(timeout_s=60)
        warmup = dataset.batch(np.arange(_PROC_ROWS))
        probe.rank(warmup.numeric, warmup.sparse)   # spawn children off-clock

        def drain():
            elapsed, latencies, errors = _drain_over_wire(
                server.url, dataset, _PROC_CLIENTS, _PROC_REQUESTS_EACH,
                _PROC_ROWS)
            assert errors == 0
            last["elapsed"] = elapsed
            last["latencies"] = latencies
            return latencies

        benchmark(drain)
        scorers = probe.stats()["scorers"]
    finally:
        server.close()
    total_rows = _PROC_CLIENTS * _PROC_REQUESTS_EACH * _PROC_ROWS
    samples = np.asarray(last["latencies"])
    pool = next(iter(scorers.values()))
    benchmark.extra_info["scorer_processes"] = scorer_processes
    benchmark.extra_info["rows_per_s"] = total_rows / last["elapsed"]
    benchmark.extra_info["requests_per_s"] = len(samples) / last["elapsed"]
    benchmark.extra_info["p50_ms"] = latency_percentile(samples, 50) * 1000
    benchmark.extra_info["p95_ms"] = latency_percentile(samples, 95) * 1000
    benchmark.extra_info["process_busy_seconds"] = pool["process_busy_seconds"]
    assert pool["processes"] == scorer_processes
    assert pool["process_restarts"] == 0


@pytest.mark.parametrize("processes", [0, 1, 2])
def test_http_process_scaling(benchmark, paper_served, process_gateway_dir,
                              processes):
    """rows/s at 0 (in-process baseline) → 1 → 2 scorer processes."""
    _bench_process_scaling(benchmark, paper_served, process_gateway_dir,
                           processes)


# ----------------------------------------------------------------------
# int8 quantized scoring plans vs full-precision f32 (PR 10)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def quantized_tower_pair(scale):
    """(f32 compiled plan, quantized compiled plan, input width).

    Sized so the f32 weights stream from memory instead of cache at the
    committed scales: a 147 MB tower (in=768, 3x4096 hidden) overflows any
    L3, so every single-request score re-reads every weight byte and the
    int8 plan's 4x smaller stream shows up directly in latency.  At
    ``ci`` scale the tower shrinks to the paper's 512x256 shape — the
    quantized lane still runs (the CI gate), it just measures kernel
    overhead rather than bandwidth.
    """
    from repro.nn.quantize import hydrate_quantized, quantize_module

    hidden = [512, 256] if scale.name == "ci" else [4096, 4096, 4096]
    in_features = 64 if scale.name == "ci" else 768
    rng = np.random.default_rng(0)
    with nn.default_dtype(np.float32):
        source = nn.MLP(in_features, hidden, 1, rng=rng)
        target = nn.MLP(in_features, hidden, 1, rng=rng)
    quantized = quantize_module(source)
    state = {name: param.data.copy()
             for name, param in source.named_parameters()
             if name not in quantized}
    hydrate_quantized(target, state, quantized)
    return source.compiled(), target.compiled(), in_features


def test_quantized_single_request_f32(benchmark, quantized_tower_pair):
    """Baseline: one request through the full-precision compiled plan.
    At default scale the 147 MB f32 weight stream dominates — measured
    ≈20 ms/request, pure memory bandwidth."""
    plan_f32, _, in_features = quantized_tower_pair
    x = np.random.default_rng(1).normal(size=(1, in_features)) \
        .astype(np.float32)
    out = benchmark(plan_f32, x)
    assert np.isfinite(out).all()


def test_quantized_single_request_int8(benchmark, quantized_tower_pair):
    """The same request through the int8 plan: weights stream as 1 byte
    per value + a blocked f32 cast that stays cache-resident.  Measured
    ≈1.3x the f32 plan at batch 1 on the 147 MB tower (the tentpole's
    'measurably faster single-request latency' acceptance number)."""
    plan_f32, plan_int8, in_features = quantized_tower_pair
    x = np.random.default_rng(1).normal(size=(1, in_features)) \
        .astype(np.float32)
    out = benchmark(plan_int8, x)
    assert np.isfinite(out).all()
    assert out.shape == plan_f32(x).shape   # parity is pinned in the tests


def test_quantized_microbatch_f32(benchmark, quantized_tower_pair):
    """32-row micro-batch through the f32 plan; rows/s in extra_info."""
    plan_f32, _, in_features = quantized_tower_pair
    x = np.random.default_rng(1).normal(size=(32, in_features)) \
        .astype(np.float32)
    out = benchmark(plan_f32, x)
    assert np.isfinite(out).all()
    if benchmark.stats is not None:       # absent under --benchmark-disable
        benchmark.extra_info["rows_per_s"] = 32 / benchmark.stats["mean"]


def test_quantized_microbatch_int8(benchmark, quantized_tower_pair):
    """32-row micro-batch through the int8 plan.  The batch amortizes the
    f32 weight stream over 32 rows while the int8 plan still pays its
    blocked cast, so the win inverts (measured ≈0.8x at batch 32) —
    quantization is a single-request-latency optimization; batched lanes
    should stay f32."""
    plan_f32, plan_int8, in_features = quantized_tower_pair
    x = np.random.default_rng(1).normal(size=(32, in_features)) \
        .astype(np.float32)
    out = benchmark(plan_int8, x)
    assert np.isfinite(out).all()
    assert out.shape == plan_f32(x).shape   # parity is pinned in the tests
    if benchmark.stats is not None:       # absent under --benchmark-disable
        benchmark.extra_info["rows_per_s"] = 32 / benchmark.stats["mean"]
