"""Bench: regenerate Fig. 6 (t-SNE clustering of gate vectors).

Reproduction claim (quantified): gate-vector clustering by semantic group
improves from MoE to the Adv/HSC variants — measured with silhouette scores
instead of eyeballing the scatter plot.
"""

from repro.experiments import fig6

from .conftest import attach, run_once


def test_fig6(benchmark, scale):
    result = run_once(benchmark, lambda: fig6.run(scale))
    attach(benchmark, result)
    panels = result.panels
    assert set(panels) == {"moe", "adv-moe", "adv-hsc-moe"}
    benchmark.extra_info["silhouette"] = {
        name: round(a.silhouette_gate, 4) for name, a in panels.items()}
    if scale.name != "ci":
        # The combined model clusters at least as well as the vanilla MoE.
        assert (panels["adv-hsc-moe"].silhouette_gate
                >= panels["moe"].silhouette_gate - 0.05)
