"""Benchmark package.

The ``__init__`` makes ``benchmarks`` a proper package so pytest imports
``bench_*.py`` modules as ``benchmarks.bench_*`` and their relative
``from .conftest import ...`` imports resolve — both when a file is named
directly (``pytest benchmarks/bench_querycat.py``) and when the directory
is collected with ``-o python_files='bench_*.py'``.
"""
