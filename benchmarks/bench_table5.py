"""Bench: regenerate Table 5 (gate input feature ablation).

Reproduction claim: feeding the gate query-side SC ids alone is at least as
good as feeding it item-side / all features (item-side gate features create
intra-session ranking noise — paper §5.4).
"""

from repro.experiments import table5

from .conftest import attach, run_once


def test_table5(benchmark, scale):
    result = run_once(benchmark, lambda: table5.run(scale))
    attach(benchmark, result)
    assert set(result.auc) == set(table5.GATE_INPUT_ROWS)
    benchmark.extra_info["sc_minus_all"] = round(
        result.auc["SC"] - result.auc["all features"], 4)
    if scale.name != "ci":
        # SC-only gate beats the all-features gate (the paper's worst row).
        assert result.auc["SC"] >= result.auc["all features"] - 0.01
