"""Bench: the §4.1 BiGRU query→category classifier."""

from repro.experiments import querycat_exp

from .conftest import attach, run_once


def test_querycat(benchmark, scale):
    result = run_once(benchmark, lambda: querycat_exp.run(scale))
    attach(benchmark, result)
    # SC prediction far above chance; TC at least as accurate as SC since it
    # only needs the right subtree (§4.1).
    num_classes = result.num_classes
    assert result.result.sc_accuracy > 3.0 / num_classes
    assert result.result.tc_accuracy >= result.result.sc_accuracy
