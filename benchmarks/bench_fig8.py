"""Bench: regenerate Fig. 8 / Table 7 (case-study expert scores).

Reproduction claim: the Adv & HSC model's *selected* experts disagree more
than the vanilla MoE's (the paper's qualitative §5.5 observation, quantified
as the std of selected-expert scores).
"""

from repro.experiments import fig8
from repro.experiments.fig8 import expert_score_spread

from .conftest import attach, run_once


def test_fig8(benchmark, scale):
    result = run_once(benchmark, lambda: fig8.run(scale))
    attach(benchmark, result)
    baseline = expert_score_spread(result.baseline)
    improved = expert_score_spread(result.improved)
    benchmark.extra_info["spread_moe"] = round(baseline, 4)
    benchmark.extra_info["spread_adv_hsc"] = round(improved, 4)
    assert baseline >= 0 and improved >= 0
