"""Bench: regenerate Fig. 5 (AUC improvement by category-size bucket).

Reproduction claim: the combined model's gain over DNN is larger on small
categories than on large ones (the HSC data-sharing effect).
"""

import numpy as np

from repro.experiments import fig5

from .conftest import attach, run_once


def test_fig5(benchmark, scale):
    result = run_once(benchmark, lambda: fig5.run(scale))
    attach(benchmark, result)
    small, large = result.small_vs_large_gain("adv-hsc-moe")
    benchmark.extra_info["small_bucket_gain"] = round(float(small), 4)
    benchmark.extra_info["large_bucket_gain"] = round(float(large), 4)
    assert np.isfinite(small) and np.isfinite(large)
