"""Bench: regenerate Fig. 7 ((N, K, D) hyper-parameter sweep).

Reproduction claim: increasing K consistently helps (more expert capacity
per example), while N and D show no monotone pattern.
"""

import numpy as np

from repro.experiments import fig7

from .conftest import attach, run_once


def test_fig7(benchmark, scale):
    result = run_once(benchmark, lambda: fig7.run(scale))
    attach(benchmark, result)
    effects = result.k_effect()
    benchmark.extra_info["k4_minus_k2"] = {str(k): round(v, 4)
                                           for k, v in effects.items()}
    # K=4 at least matches K=2 on average over (N, D) pairs.
    assert np.mean(list(effects.values())) > -0.01
