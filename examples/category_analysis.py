"""Scenario: the §3 category-inhomogeneity analysis on a raw search log.

Before reaching for a category-aware model, the paper first *measures*
whether categories actually behave differently: per-category feature
importance (eq. 1, Fig. 2) and brand concentration (Fig. 3).  This script
runs the same analysis a practitioner would run on their own log to decide
whether the MoE machinery is worth deploying.

Run:
    python examples/category_analysis.py [--scale ci|default|paper]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments import SCALES
from repro.experiments.common import build_environment
from repro.metrics import (concentration_by_category,
                           feature_importance_by_category, importance_dispersion)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="default", choices=sorted(SCALES))
    args = parser.parse_args()
    env = build_environment(SCALES[args.scale])
    dataset = env.dataset
    taxonomy = env.taxonomy

    print("=== feature importance FI(f) per top-category (eq. 1 / Fig. 2a) ===")
    table = feature_importance_by_category(dataset, level="tc")
    features = dataset.spec.numeric_names
    header = f"{'category':<16}" + "".join(f"{f[:10]:>12}" for f in features)
    print(header)
    for tc_id, row in sorted(table.items()):
        name = taxonomy.top_category(tc_id).name
        print(f"{name:<16}" + "".join(f"{row.get(f, float('nan')):>12.3f}"
                                      for f in features))

    inter_dispersion = importance_dispersion(table)
    print("\nFI dispersion across top-categories (higher = more heterogeneous):")
    for feature, value in sorted(inter_dispersion.items(), key=lambda kv: -kv[1]):
        print(f"  {feature:<22} {value:.4f}")

    # Drill into one TC's children (Fig. 2b): intra-category homogeneity.
    biggest_tc = max(table, key=lambda t: (dataset.query_tc == t).sum())
    children = taxonomy.children_of(biggest_tc)
    intra = feature_importance_by_category(dataset, level="sc",
                                           category_ids=children)
    intra_dispersion = importance_dispersion(intra)
    name = taxonomy.top_category(biggest_tc).name
    print(f"\nFI dispersion across sub-categories of {name!r} (Fig. 2b):")
    for feature, value in sorted(intra_dispersion.items(), key=lambda kv: -kv[1]):
        print(f"  {feature:<22} {value:.4f}")

    ratios = [inter_dispersion[f] / intra_dispersion[f]
              for f in inter_dispersion
              if intra_dispersion.get(f, 0) > 0]
    print(f"\nmean inter/intra dispersion ratio: {np.mean(ratios):.2f} "
          f"(> 1 justifies a category-aware model)")

    print("\n=== brand concentration: brands covering top 80% of sales (Fig. 3a) ===")
    concentration = concentration_by_category(
        env.world.brand_sales_by_tc(), total_brands=env.world.config.brands_per_tc)
    print(f"{'category':<16}{'share of brands':>16}{'# brands':>10}")
    for tc_id, conc in sorted(concentration.items(),
                              key=lambda kv: kv[1].proportion):
        print(f"{taxonomy.top_category(tc_id).name:<16}"
              f"{conc.proportion:>16.1%}{conc.brands_for_top_share:>10}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
