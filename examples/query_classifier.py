"""Scenario: query → category classification (paper §4.1).

The gates of the paper's ranking model consume query-level category ids.
In production these come from a BiGRU text classifier trained on annotated
queries; here the annotation step is replaced by construction (the synthetic
query generator knows each query's true sub-category).

The script trains the classifier, reports SC/TC accuracy, and then shows the
full pipeline on a few raw queries: tokens → predicted SC → TC via the
category hierarchy → the gate's expert selection.

Run:
    python examples/query_classifier.py [--scale ci|default|paper]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments import SCALES
from repro.experiments.common import build_environment, model_config, train_config
from repro.models import build_model
from repro.querycat import (QueryCategoryClassifier, QueryClassifierConfig,
                            train_classifier)
from repro.training import Trainer


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="default", choices=sorted(SCALES))
    parser.add_argument("--epochs", type=int, default=4)
    args = parser.parse_args()
    scale = SCALES[args.scale]
    env = build_environment(scale)
    queries = env.log.queries

    print(f"training BiGRU classifier on {queries.num_queries:,} queries, "
          f"{env.taxonomy.num_sub_categories} sub-categories")
    classifier = QueryCategoryClassifier(
        queries.vocab_size, env.taxonomy.max_sc_id() + 1,
        QueryClassifierConfig(epochs=args.epochs))
    result = train_classifier(classifier, queries, env.taxonomy)
    print(f"SC accuracy: {result.sc_accuracy:.4f}   "
          f"TC accuracy: {result.tc_accuracy:.4f}")

    # Train a small MoE ranker so we can show the classifier feeding the gate.
    print("\ntraining an Adv & HSC-MoE ranker for the gate demo ...")
    model = build_model("adv-hsc-moe", env.dataset.spec, env.taxonomy,
                        model_config(scale), train_dataset=env.train)
    Trainer(model, train_config(scale)).fit(env.train)

    print("\npipeline demo: query text -> SC -> TC -> selected experts")
    rng = np.random.default_rng(0)
    sample = rng.choice(queries.num_queries, size=5, replace=False)
    predicted_sc = classifier.predict_sc(queries.tokens[sample],
                                         queries.lengths[sample])
    predicted_tc = env.taxonomy.parents_of(predicted_sc)
    for row, sc_id, tc_id in zip(sample, predicted_sc, predicted_tc):
        true_sc = env.taxonomy.sub_category(int(queries.sc_ids[row]))
        predicted = env.taxonomy.sub_category(int(sc_id))
        # Ask the gate which experts it would pick for this predicted SC.
        example = np.flatnonzero(env.test.query_sc == sc_id)
        experts = "n/a (category unseen in test)"
        if example.size:
            vector = model.gate_vectors(env.test.batch(example[:1]))[0]
            experts = np.flatnonzero(vector > 0).tolist()
        tokens = queries.tokens[row, :queries.lengths[row]].tolist()
        mark = "OK " if sc_id == queries.sc_ids[row] else "MISS"
        print(f"  [{mark}] tokens={tokens} true={true_sc.name!r} "
              f"pred={predicted.name!r} tc={env.taxonomy.top_category(int(tc_id)).name!r} "
              f"experts={experts}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
