"""Quickstart: generate a synthetic e-commerce search log, train the paper's
Adv & HSC-MoE ranker, and evaluate it against the DNN baseline.

Run:
    python examples/quickstart.py [--scale ci|default|paper]
"""

from __future__ import annotations

import argparse

from repro.data import (LogConfig, WorldConfig, SyntheticWorld, compute_statistics,
                        dataset_from_log, simulate_log, train_test_split)
from repro.experiments import SCALES
from repro.hierarchy import default_taxonomy
from repro.models import ModelConfig, build_model
from repro.training import TrainConfig, Trainer


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="default", choices=sorted(SCALES))
    args = parser.parse_args()
    scale = SCALES[args.scale]

    # 1. Build the world: a category hierarchy (Figure 1) plus a product
    #    catalog whose feature->purchase behaviour differs per category (§3).
    taxonomy = default_taxonomy()
    print(taxonomy.describe().splitlines()[0])
    world = SyntheticWorld.generate(taxonomy, WorldConfig(seed=0))
    print(f"catalog: {world.num_products:,} products, {world.num_brands} brands")

    # 2. Simulate the search log: sessions of (query, item) pairs with
    #    purchase labels (the paper's Table 1 data).
    log = simulate_log(world, LogConfig(seed=1, num_queries=scale.num_queries))
    dataset = dataset_from_log(log)
    train, test = train_test_split(dataset)
    stats = compute_statistics(train)
    print(f"log: {stats.num_examples:,} training examples, "
          f"{stats.num_sessions:,} sessions, {stats.num_queries:,} queries")

    # 3. Train the combined model (eq. 14) and the DNN baseline.
    config = ModelConfig(embedding_dim=scale.embedding_dim,
                         hidden_sizes=scale.hidden_sizes,
                         num_experts=scale.num_experts, top_k=scale.top_k,
                         num_disagreeing=scale.num_disagreeing)
    trainer_config = TrainConfig(epochs=scale.epochs,
                                 batch_size=scale.batch_size,
                                 learning_rate=scale.learning_rate, verbose=True)
    results = {}
    for name in ("dnn", "adv-hsc-moe"):
        print(f"\ntraining {name} ...")
        model = build_model(name, dataset.spec, taxonomy, config,
                            train_dataset=train)
        result = Trainer(model, trainer_config).fit(train, eval_dataset=test)
        results[name] = result
        print(f"{name}: AUC={result.final_auc:.4f} NDCG={result.final_ndcg:.4f} "
              f"NDCG@10={result.final_ndcg_at_k:.4f}")

    gain = results["adv-hsc-moe"].final_auc - results["dnn"].final_auc
    print(f"\nAdv & HSC-MoE vs DNN: {gain:+.4f} AUC")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
