"""Scenario: extract and fine-tune a category-dedicated model (paper §6).

The paper's conclusions propose extracting "category-dedicated models from
the unified ensemble" and assessing "transfer learning potential based on
the component expert models".  This script:

1. trains the full Adv & HSC-MoE ensemble;
2. extracts a :class:`DedicatedRanker` for one sub-category — the K experts
   its gate routes to, with frozen gate weights;
3. fine-tunes the extracted model on that category's data only;
4. compares the parent ensemble, the frozen extract, and the fine-tuned
   extract on the category's test sessions;
5. saves and reloads the fine-tuned model through the checkpoint API.

Run:
    python examples/expert_transfer.py [--scale ci|default|paper]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import nn
from repro.experiments import SCALES
from repro.experiments.common import build_environment, model_config, train_config
from repro.models import build_model, expert_utilization, extract_dedicated_model
from repro.training import Trainer, evaluate


def pick_target_sc(env) -> int:
    """A mid-sized sub-category with evaluable test sessions."""
    candidates = []
    for sc in env.taxonomy.sub_categories:
        train_size = int((env.train.query_sc == sc.sc_id).sum())
        mix = env.test.filter_by_sc(sc.sc_id).sessions_with_label_mix().size
        if mix >= 15:
            candidates.append((train_size, sc.sc_id))
    if not candidates:
        raise SystemExit("no evaluable sub-category; increase --scale")
    candidates.sort()
    return candidates[len(candidates) // 2][1]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="default", choices=sorted(SCALES))
    parser.add_argument("--finetune-steps", type=int, default=60)
    args = parser.parse_args()
    scale = SCALES[args.scale]
    env = build_environment(scale)

    print("training the full Adv & HSC-MoE ensemble ...")
    parent = build_model("adv-hsc-moe", env.dataset.spec, env.taxonomy,
                         model_config(scale), train_dataset=env.train)
    Trainer(parent, train_config(scale)).fit(env.train)

    shares = expert_utilization(parent, env.test)
    print("expert utilization: " + " ".join(f"E{i}={s:.0%}"
                                            for i, s in enumerate(shares)))

    sc_id = pick_target_sc(env)
    sc = env.taxonomy.sub_category(sc_id)
    print(f"\nextracting dedicated model for {sc.name!r} "
          f"(under {env.taxonomy.top_category(sc.tc_id).name!r})")
    dedicated = extract_dedicated_model(parent, sc_id, env.train)
    print(f"extracted experts {dedicated.expert_ids} with gate weights "
          f"{np.round(dedicated.gate_weights, 3).tolist()}")

    own_train = env.train.filter_by_sc(sc_id)
    own_test = env.test.filter_by_sc(sc_id)
    results = {
        "parent ensemble": evaluate(parent, own_test)["auc"],
        "frozen extract": evaluate(dedicated, own_test)["auc"],
    }

    # Fine-tune the extract on the category slice (embedder frozen — pure
    # tower adaptation, the transfer-learning setting of §6).
    dedicated.freeze_embedder()
    optimizer = nn.optim.AdamW(list(dedicated.trainable_parameters()),
                               lr=scale.learning_rate, weight_decay=1e-4)
    rng = np.random.default_rng(0)
    steps = 0
    while steps < args.finetune_steps:
        for batch in own_train.iter_batches(min(256, len(own_train)), rng=rng):
            optimizer.zero_grad()
            loss, _ = dedicated.loss(batch)
            loss.backward()
            optimizer.step()
            steps += 1
            if steps >= args.finetune_steps:
                break
    results["fine-tuned extract"] = evaluate(dedicated, own_test)["auc"]

    print(f"\nAUC on {sc.name!r} test sessions:")
    for label, auc in results.items():
        print(f"  {label:<20} {auc:.4f}")

    # Checkpoint roundtrip for the parent ensemble.
    from repro.utils import load_model, save_checkpoint
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ensemble"
        save_checkpoint(parent, path, model_name="adv-hsc-moe",
                        extra={"auc": results["parent ensemble"]})
        restored = load_model(path, env.dataset.spec, env.taxonomy,
                              train_dataset=env.train)
        check = evaluate(restored, own_test)["auc"]
        print(f"\ncheckpoint roundtrip: restored ensemble AUC {check:.4f} "
              f"(matches: {np.isclose(check, results['parent ensemble'])})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
