"""Scenario: making the expert ensemble transparent.

The paper's motivation is not only accuracy but *transparency*: "making the
expert specialties more distinctive and transparent ... opens up the
possibility for subsequent extraction and tweaking of category-dedicated
models" (§1).  This script trains the vanilla MoE and the Adv & HSC variant
on the same log and inspects:

1. which experts each top-category routes to (the gate's routing table);
2. how strongly gate vectors cluster by semantic group (Fig. 6, quantified);
3. the per-expert scores on a concrete session (Fig. 8 / Table 7).

Run:
    python examples/expert_inspection.py [--scale ci|default|paper]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import (analyze_gate_clustering, pick_case_session,
                            run_case_study)
from repro.experiments import SCALES
from repro.experiments.common import build_environment, model_config, train_config
from repro.models import build_model
from repro.training import Trainer


def routing_table(model, env, max_rows: int = 10) -> None:
    """Print each top-category's most-used experts."""
    print(f"{'top category':<16}{'group':<20}experts (by total gate mass)")
    for tc in env.taxonomy.top_categories[:max_rows]:
        rows = np.flatnonzero(env.test.query_tc == tc.tc_id)[:200]
        if rows.size == 0:
            continue
        vectors = model.gate_vectors(env.test.batch(rows))
        mass = vectors.sum(axis=0)
        top = np.argsort(-mass)[:3]
        shares = ", ".join(f"E{e}({mass[e] / mass.sum():.0%})" for e in top)
        print(f"{tc.name:<16}{tc.semantic_group:<20}{shares}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="default", choices=sorted(SCALES))
    args = parser.parse_args()
    scale = SCALES[args.scale]
    env = build_environment(scale)

    models = {}
    for name in ("moe", "adv-hsc-moe"):
        print(f"training {name} ...")
        model = build_model(name, env.dataset.spec, env.taxonomy,
                            model_config(scale), train_dataset=env.train)
        Trainer(model, train_config(scale)).fit(env.train)
        models[name] = model

    print("\n=== routing table (Adv & HSC-MoE) ===")
    routing_table(models["adv-hsc-moe"], env)

    print("\n=== gate-vector clustering by semantic group (Fig. 6) ===")
    for name, model in models.items():
        analysis = analyze_gate_clustering(model, env.test, model_name=name,
                                           max_examples=scale.tsne_examples,
                                           run_tsne=False)
        print(f"{name:<14} silhouette={analysis.silhouette_gate:+.4f} "
              f"intra/inter={analysis.intra_inter:.4f}")

    print("\n=== case study: one session, all expert scores (Fig. 8) ===")
    rows = pick_case_session(env.test, num_negatives=2, seed=0)
    for name, model in models.items():
        case = run_case_study(model, env.test, rows, model_name=name)
        print(f"model: {name}")
        for index, item in enumerate(case.items):
            scores = " ".join(f"{'*' if sel else ' '}{v:.2f}"
                              for v, sel in zip(item.expert_scores, item.selected))
            print(f"  item {index} (label={item.label}) pred={item.prediction:.4f} "
                  f"experts: {scores}")
    print("(* marks gate-selected experts)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
