"""Scenario: rescuing a data-poor category with hierarchy-aware experts.

This is the workload the paper's introduction motivates: a small sub-category
(think a niche appliance type) has too little purchase data to train its own
ranker, but shares user behaviour with its sibling categories under the same
top-category.  The Hierarchical Soft Constraint lets siblings share experts,
so the small category borrows statistical strength (paper §5.3 / Table 3).

The script trains:
  * a dedicated DNN on the small category alone,
  * a joint DNN on the small category + its siblings,
  * a joint Adv & HSC-MoE on the same joint data,
and reports AUC on the small category's test sessions.

Run:
    python examples/small_category_rescue.py [--scale ci|default|paper]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments import SCALES
from repro.experiments.common import build_environment, model_config, train_config
from repro.models import build_model
from repro.training import Trainer, evaluate


def pick_small_sc(env) -> int:
    """Find a sub-category that is small but still evaluable."""
    candidates = []
    for sc in env.taxonomy.sub_categories:
        train_size = int((env.train.query_sc == sc.sc_id).sum())
        test_mix = env.test.filter_by_sc(sc.sc_id).sessions_with_label_mix().size
        if train_size > 0 and test_mix >= 10:
            candidates.append((train_size, sc.sc_id))
    candidates.sort()
    if not candidates:
        raise SystemExit("no evaluable sub-category found; increase --scale")
    return candidates[0][1]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="default", choices=sorted(SCALES))
    args = parser.parse_args()
    scale = SCALES[args.scale]
    env = build_environment(scale)

    small_sc = pick_small_sc(env)
    sc = env.taxonomy.sub_category(small_sc)
    tc = env.taxonomy.top_category(sc.tc_id)
    siblings = env.taxonomy.children_of(sc.tc_id)
    print(f"small category: {sc.name!r} (SC {sc.sc_id}) under {tc.name!r}; "
          f"{len(siblings) - 1} siblings")

    own_train = env.train.filter_by_sc(small_sc)
    family_train = env.train.filter_by_sc(siblings)
    own_test = env.test.filter_by_sc(small_sc)
    print(f"training data: {len(own_train):,} own examples vs "
          f"{len(family_train):,} with siblings")

    config = model_config(scale)
    # Give the tiny dedicated model extra passes so the comparison is fair.
    steps_factor = max(1, len(family_train) // max(1, len(own_train)))
    dedicated_tc = train_config(scale.with_updates(
        epochs=min(scale.epochs * steps_factor, scale.epochs * 12)))

    rows = {}
    dedicated = build_model("dnn", env.dataset.spec, env.taxonomy, config)
    Trainer(dedicated, dedicated_tc).fit(own_train)
    rows["dedicated DNN (own data)"] = evaluate(dedicated, own_test)["auc"]

    joint_dnn = build_model("dnn", env.dataset.spec, env.taxonomy, config)
    Trainer(joint_dnn, train_config(scale)).fit(family_train)
    rows["joint DNN (family data)"] = evaluate(joint_dnn, own_test)["auc"]

    ours = build_model("adv-hsc-moe", env.dataset.spec, env.taxonomy, config,
                       train_dataset=family_train)
    Trainer(ours, train_config(scale)).fit(family_train)
    rows["joint Adv & HSC-MoE"] = evaluate(ours, own_test)["auc"]

    print(f"\nAUC on {sc.name!r} test sessions:")
    for label, auc in rows.items():
        print(f"  {label:<28} {auc:.4f}")
    best = max(rows, key=rows.get)
    print(f"\nwinner: {best}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
